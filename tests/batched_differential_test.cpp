// Differential suite for the filter-arena match kernels and the batched
// shared-frontier flood path (bloom/filter_arena, search/batched_flood).
//
// The optimisation contract is bit-identity, not approximation: every
// match kernel (reference / portable / AVX2) must produce the same
// level-match bitmasks — hence the same scores, the same neighbor
// ranking, the same tie-breaks — and the batched flood must reproduce
// the scalar engine's QueryResult field for field, at any batch
// partitioning and thread count. These tests pin that contract over ~1k
// seeded random topologies (ISSUE: hot-path correctness sweep).
#include <gtest/gtest.h>

#include <vector>

#include "analysis/parallel_query_driver.hpp"
#include "bloom/filter_arena.hpp"
#include "search/abf_search.hpp"
#include "search/flood_search.hpp"
#include "search/gossip_flood.hpp"
#include "test_util.hpp"

namespace makalu {
namespace {

Graph random_graph(std::size_t n, std::size_t extra_edges, Rng& rng) {
  Graph g(n);
  for (NodeId v = 0; v < n; ++v) {
    g.add_edge(v, static_cast<NodeId>((v + 1) % n));  // connected ring
  }
  for (std::size_t i = 0; i < extra_edges; ++i) {
    g.add_edge(static_cast<NodeId>(rng.uniform_below(n)),
               static_cast<NodeId>(rng.uniform_below(n)));
  }
  return g;
}

void expect_same_result(const QueryResult& a, const QueryResult& b,
                        const char* what, std::uint64_t seed) {
  EXPECT_EQ(a.success, b.success) << what << " seed=" << seed;
  EXPECT_EQ(a.messages, b.messages) << what << " seed=" << seed;
  EXPECT_EQ(a.duplicates, b.duplicates) << what << " seed=" << seed;
  EXPECT_EQ(a.nodes_visited, b.nodes_visited) << what << " seed=" << seed;
  EXPECT_EQ(a.first_hit_hop, b.first_hit_hop) << what << " seed=" << seed;
  EXPECT_EQ(a.replicas_found, b.replicas_found) << what << " seed=" << seed;
  EXPECT_EQ(a.forwarders, b.forwarders) << what << " seed=" << seed;
  EXPECT_EQ(a.truncated, b.truncated) << what << " seed=" << seed;
}

class SeededDifferential : public ::testing::TestWithParam<std::uint64_t> {};

// --- match kernels: reference vs portable vs AVX2 --------------------------

// Every scoring mode must route every query identically: the greedy
// neighbor choice compares scores with strict >, so a single differing
// mask bit anywhere would change the route, the message count, or the
// RNG-fallback stream. Equality of full QueryResults over random
// topologies is therefore a sharp test of kernel equivalence.
TEST_P(SeededDifferential, MatchKernelsRouteIdentically) {
  const std::uint64_t seed = GetParam();
  Rng topo_rng(seed * 7919 + 1);
  for (int t = 0; t < 25; ++t) {
    const std::size_t n = 24 + topo_rng.uniform_below(32);
    const Graph g = random_graph(n, topo_rng.uniform_below(40), topo_rng);
    const CsrGraph csr = CsrGraph::from_graph(g);
    const ObjectCatalog catalog(n, 4, 0.08, seed + t);
    AbfOptions options;
    options.depth = 3;
    options.level_params = {/*bits=*/256, /*hashes=*/3};
    AbfRouter router(csr, catalog, options);

    std::vector<MatchKernel> modes = {MatchKernel::kReference,
                                      MatchKernel::kPortable,
                                      MatchKernel::kAuto};
    if (resolved_match_kernel() == MatchKernel::kAvx2) {
      modes.push_back(MatchKernel::kAvx2);
    }
    for (std::uint64_t q = 0; q < 4; ++q) {
      const NodeId source =
          static_cast<NodeId>(topo_rng.uniform_below(n));
      const ObjectId object =
          static_cast<ObjectId>(topo_rng.uniform_below(4));
      QueryResult baseline;
      for (std::size_t m = 0; m < modes.size(); ++m) {
        router.set_scoring_mode(modes[m]);
        QueryWorkspace ws;
        ws.seed_rng(seed, q);  // identical fallback RNG stream per mode
        const QueryResult r = router.route(source, object, 30, ws);
        if (m == 0) {
          baseline = r;
        } else {
          expect_same_result(r, baseline, "abf-kernel", seed);
        }
      }
    }
  }
}

// The benchmark seam that replays the pre-arena routing table (heap
// AttenuatedBloomFilter per arc, per-call hashing) must route exactly as
// every arena kernel: its 1.00x baseline status rests on scores being
// bit-identical, not merely close.
TEST_P(SeededDifferential, LegacyReplayRoutesIdentically) {
  const std::uint64_t seed = GetParam();
  Rng topo_rng(seed * 6151 + 5);
  for (int t = 0; t < 10; ++t) {
    const std::size_t n = 24 + topo_rng.uniform_below(32);
    const Graph g = random_graph(n, topo_rng.uniform_below(40), topo_rng);
    const CsrGraph csr = CsrGraph::from_graph(g);
    const ObjectCatalog catalog(n, 4, 0.08, seed + 100 + t);
    AbfOptions options;
    options.depth = 3;
    options.level_params = {/*bits=*/256, /*hashes=*/3};
    AbfRouter router(csr, catalog, options);
    ASSERT_FALSE(router.legacy_replay_enabled());

    for (std::uint64_t q = 0; q < 4; ++q) {
      const NodeId source =
          static_cast<NodeId>(topo_rng.uniform_below(n));
      const ObjectId object =
          static_cast<ObjectId>(topo_rng.uniform_below(4));

      QueryWorkspace ws;
      ws.seed_rng(seed, q);
      router.set_scoring_mode(MatchKernel::kAuto);
      const QueryResult arena_result = router.route(source, object, 30, ws);

      router.enable_legacy_replay();
      ASSERT_TRUE(router.legacy_replay_enabled());
      QueryWorkspace legacy_ws;
      legacy_ws.seed_rng(seed, q);
      const QueryResult legacy_result =
          router.route(source, object, 30, legacy_ws);
      expect_same_result(legacy_result, arena_result, "legacy-replay", seed);
      router.disable_legacy_replay();
    }

    // Content churn while the mirror is live: notify_insert must keep the
    // mirror coherent with the arena or legacy scores drift.
    router.enable_legacy_replay();
    const auto holder = static_cast<NodeId>(topo_rng.uniform_below(n));
    router.notify_insert(holder, /*object=*/2);
    QueryWorkspace ws_arena;
    ws_arena.seed_rng(seed, 99);
    router.set_scoring_mode(MatchKernel::kAuto);
    AbfRouter fresh(csr, catalog, options);  // mirror-free control
    fresh.notify_insert(holder, /*object=*/2);
    QueryWorkspace ws_fresh;
    ws_fresh.seed_rng(seed, 99);
    const auto source = static_cast<NodeId>(topo_rng.uniform_below(n));
    expect_same_result(router.route(source, /*object=*/2, 30, ws_arena),
                       fresh.route(source, /*object=*/2, 30, ws_fresh),
                       "legacy-replay-churn", seed);
    router.disable_legacy_replay();
  }
}

// The interleaved-walker batched ABF path must reproduce the scalar
// route() exactly: each walker owns one visited bit and its own RNG
// stream, so co-scheduling is a pure instruction reordering. Exercised
// across every scoring path (arena kernels, reference mix, legacy heap
// replay) and at partitionings above and below kBatchWidth.
TEST_P(SeededDifferential, BatchedAbfWalkersMatchScalarRoutes) {
  const std::uint64_t seed = GetParam();
  Rng topo_rng(seed * 4409 + 11);
  for (int t = 0; t < 12; ++t) {
    const std::size_t n = 48 + topo_rng.uniform_below(48);
    const Graph g = random_graph(n, topo_rng.uniform_below(60), topo_rng);
    const CsrGraph csr = CsrGraph::from_graph(g);
    const ObjectCatalog catalog(n, 5, 0.06, seed + 300 + t);
    AbfOptions options;
    options.depth = 3;
    options.level_params = {/*bits=*/256, /*hashes=*/3};
    options.ttl = 20;
    AbfRouter router(csr, catalog, options);
    ASSERT_TRUE(router.supports_query_batching());

    // 70 jobs > kBatchWidth forces the chunking path once per topology.
    const std::size_t jobs_n = (t == 0) ? 70 : 9;
    std::vector<BatchQueryJob> jobs(jobs_n);
    for (std::size_t q = 0; q < jobs_n; ++q) {
      jobs[q].source = static_cast<NodeId>(topo_rng.uniform_below(n));
      jobs[q].object = static_cast<ObjectId>(topo_rng.uniform_below(5));
      jobs[q].rng = Rng(seed * 131 + q);
    }

    struct ModeCase {
      MatchKernel mode;
      bool legacy;
    };
    std::vector<ModeCase> mode_cases = {{MatchKernel::kAuto, false},
                                        {MatchKernel::kReference, false},
                                        {MatchKernel::kAuto, true}};
    for (const auto& mode_case : mode_cases) {
      router.set_scoring_mode(mode_case.mode);
      if (mode_case.legacy) {
        router.enable_legacy_replay();
      } else {
        router.disable_legacy_replay();
      }

      std::vector<QueryResult> batched(jobs_n);
      QueryWorkspace batch_ws;
      router.run_many(jobs, catalog, batch_ws, batched.data());

      for (std::size_t q = 0; q < jobs_n; ++q) {
        QueryWorkspace scalar_ws;
        scalar_ws.rng() = jobs[q].rng;
        const QueryResult scalar =
            router.run(jobs[q].source, jobs[q].object, catalog, scalar_ws);
        expect_same_result(batched[q], scalar, "batched-abf", seed);
      }
    }
    router.disable_legacy_replay();
  }
}

// Probe sets overflow when hashes > BloomProbeSet::kMaxWords; the word
// kernels must then fall back to the reference probe loop and still agree.
TEST(SimdMatchDifferential, OverflowProbeSetFallsBackIdentically) {
  Rng topo_rng(99);
  const std::size_t n = 32;
  const Graph g = random_graph(n, 20, topo_rng);
  const CsrGraph csr = CsrGraph::from_graph(g);
  const ObjectCatalog catalog(n, 3, 0.1, 5);
  AbfOptions options;
  options.level_params = {/*bits=*/512,
                          /*hashes=*/BloomProbeSet::kMaxWords + 4};
  AbfRouter router(csr, catalog, options);
  for (std::uint64_t q = 0; q < 8; ++q) {
    const NodeId source = static_cast<NodeId>(topo_rng.uniform_below(n));
    router.set_scoring_mode(MatchKernel::kReference);
    QueryWorkspace ws_ref;
    ws_ref.seed_rng(7, q);
    const QueryResult ref = router.route(source, 0, 30, ws_ref);
    router.set_scoring_mode(MatchKernel::kAuto);
    QueryWorkspace ws_auto;
    ws_auto.seed_rng(7, q);
    expect_same_result(router.route(source, 0, 30, ws_auto), ref,
                       "overflow-probes", q);
  }
}

// Runtime-dispatch seam: forcing the portable kernel must (a) be visible
// through resolved_match_kernel and (b) leave results unchanged — the
// dispatch layer selects an implementation, never a behaviour.
TEST(SimdMatchDifferential, ForcedPortableDispatchMatchesReference) {
  Rng topo_rng(17);
  const std::size_t n = 40;
  const Graph g = random_graph(n, 30, topo_rng);
  const CsrGraph csr = CsrGraph::from_graph(g);
  const ObjectCatalog catalog(n, 4, 0.1, 11);
  AbfRouter router(csr, catalog, AbfOptions{});

  set_match_kernel_override(MatchKernel::kPortable);
  EXPECT_EQ(resolved_match_kernel(), MatchKernel::kPortable);
  for (std::uint64_t q = 0; q < 8; ++q) {
    const NodeId source = static_cast<NodeId>(topo_rng.uniform_below(n));
    router.set_scoring_mode(MatchKernel::kReference);
    QueryWorkspace ws_ref;
    ws_ref.seed_rng(3, q);
    const QueryResult ref = router.route(source, 0, 30, ws_ref);
    router.set_scoring_mode(MatchKernel::kAuto);  // resolves to portable
    QueryWorkspace ws_forced;
    ws_forced.seed_rng(3, q);
    expect_same_result(router.route(source, 0, 30, ws_forced), ref,
                       "forced-portable", q);
  }
  set_match_kernel_override(MatchKernel::kAuto);  // restore dispatch
}

// --- batched flood vs scalar flood -----------------------------------------

// The shared-frontier kernel must reproduce the scalar FloodEngine result
// for every query of the batch — including duplicate counts, forwarder
// counts, and echo suppression — independent of which queries share the
// batch. 8 param seeds x 125 inner topologies = 1000 seeded topologies.
TEST_P(SeededDifferential, BatchedFloodMatchesScalarOverRandomTopologies) {
  const std::uint64_t seed = GetParam();
  Rng topo_rng(seed * 104729 + 3);
  FloodOptions options;
  options.duplicate_suppression = true;
  for (int t = 0; t < 125; ++t) {
    const std::size_t n = 12 + topo_rng.uniform_below(36);
    const Graph g = random_graph(n, topo_rng.uniform_below(32), topo_rng);
    const CsrGraph csr = CsrGraph::from_graph(g);
    const ObjectCatalog catalog(n, 3, 0.1, seed + t);
    options.ttl = 2 + static_cast<std::uint32_t>(topo_rng.uniform_below(4));
    FloodEngine engine(csr, options);
    ASSERT_TRUE(engine.supports_query_batching());

    std::vector<BatchQueryJob> jobs(6);
    for (std::size_t q = 0; q < jobs.size(); ++q) {
      jobs[q] = {static_cast<NodeId>(topo_rng.uniform_below(n)),
                 static_cast<ObjectId>(topo_rng.uniform_below(3)),
                 Rng(seed ^ (q + 1))};
    }
    std::vector<QueryResult> batched(jobs.size());
    QueryWorkspace batch_ws;
    engine.run_many(jobs, catalog, batch_ws, batched.data());

    QueryWorkspace scalar_ws;
    for (std::size_t q = 0; q < jobs.size(); ++q) {
      scalar_ws.rng() = jobs[q].rng;
      const QueryResult scalar =
          engine.run(jobs[q].source, jobs[q].object, catalog, scalar_ws);
      expect_same_result(batched[q], scalar, "flood-batch", seed + t);
    }
  }
}

// Message-cap overflow: queries that cross the cap are stripped from the
// batch and re-run scalar; their truncated results — and everyone else's
// untruncated ones — must still match the scalar engine exactly.
TEST_P(SeededDifferential, BatchedFloodMessageCapFallbackMatchesScalar) {
  const std::uint64_t seed = GetParam();
  Rng topo_rng(seed * 31 + 7);
  FloodOptions options;
  options.duplicate_suppression = true;
  options.ttl = 4;
  for (int t = 0; t < 20; ++t) {
    const std::size_t n = 20 + topo_rng.uniform_below(24);
    const Graph g = random_graph(n, 30, topo_rng);
    const CsrGraph csr = CsrGraph::from_graph(g);
    const ObjectCatalog catalog(n, 2, 0.1, seed + t);
    // Caps low enough that some queries truncate mid-hop and some don't.
    options.message_cap = 5 + topo_rng.uniform_below(60);
    FloodEngine engine(csr, options);

    std::vector<BatchQueryJob> jobs(5);
    for (std::size_t q = 0; q < jobs.size(); ++q) {
      jobs[q] = {static_cast<NodeId>(topo_rng.uniform_below(n)),
                 static_cast<ObjectId>(topo_rng.uniform_below(2)),
                 Rng(seed ^ (q + 17))};
    }
    std::vector<QueryResult> batched(jobs.size());
    QueryWorkspace batch_ws;
    engine.run_many(jobs, catalog, batch_ws, batched.data());

    QueryWorkspace scalar_ws;
    for (std::size_t q = 0; q < jobs.size(); ++q) {
      scalar_ws.rng() = jobs[q].rng;
      const QueryResult scalar =
          engine.run(jobs[q].source, jobs[q].object, catalog, scalar_ws);
      expect_same_result(batched[q], scalar, "flood-cap", seed + t);
    }
  }
}

// Gossip floods batch only inside the deterministic boundary (no RNG is
// consumed there); within it they must match the scalar gossip run.
TEST_P(SeededDifferential, BatchedGossipFloodMatchesScalarInsideBoundary) {
  const std::uint64_t seed = GetParam();
  Rng topo_rng(seed * 613 + 5);
  GossipFloodOptions options;
  options.ttl = 3;
  options.boundary_hops = 4;  // ttl <= boundary: fully deterministic
  for (int t = 0; t < 20; ++t) {
    const std::size_t n = 16 + topo_rng.uniform_below(24);
    const Graph g = random_graph(n, topo_rng.uniform_below(24), topo_rng);
    const CsrGraph csr = CsrGraph::from_graph(g);
    const ObjectCatalog catalog(n, 2, 0.15, seed + t);
    GossipFloodEngine engine(csr, options);
    ASSERT_TRUE(engine.supports_query_batching());

    std::vector<BatchQueryJob> jobs(4);
    for (std::size_t q = 0; q < jobs.size(); ++q) {
      jobs[q] = {static_cast<NodeId>(topo_rng.uniform_below(n)),
                 static_cast<ObjectId>(topo_rng.uniform_below(2)),
                 Rng(seed ^ (q + 5))};
    }
    std::vector<QueryResult> batched(jobs.size());
    QueryWorkspace batch_ws;
    engine.run_many(jobs, catalog, batch_ws, batched.data());

    QueryWorkspace scalar_ws;
    for (std::size_t q = 0; q < jobs.size(); ++q) {
      scalar_ws.rng() = jobs[q].rng;
      const QueryResult scalar =
          engine.run(jobs[q].source, jobs[q].object, catalog, scalar_ws);
      expect_same_result(batched[q], scalar, "gossip-batch", seed + t);
    }
  }

  // Past the boundary each forward draws randomness a coalesced frontier
  // cannot replay: the engine must refuse to batch, not drift.
  options.ttl = 6;
  options.boundary_hops = 2;
  const Graph g = random_graph(16, 8, topo_rng);
  const CsrGraph csr = CsrGraph::from_graph(g);
  EXPECT_FALSE(GossipFloodEngine(csr, options).supports_query_batching());
}

INSTANTIATE_TEST_SUITE_P(BatchedFloodDifferential, SeededDifferential,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// --- driver: batch flag and thread count are result-invariant --------------

void expect_same_aggregate(const QueryAggregate& a, const QueryAggregate& b) {
  EXPECT_EQ(a.queries(), b.queries());
  EXPECT_EQ(a.success_rate(), b.success_rate());
  EXPECT_EQ(a.mean_messages(), b.mean_messages());
  EXPECT_EQ(a.mean_duplicates(), b.mean_duplicates());
  EXPECT_EQ(a.duplicate_fraction(), b.duplicate_fraction());
  EXPECT_EQ(a.mean_nodes_visited(), b.mean_nodes_visited());
  EXPECT_EQ(a.mean_replicas_found(), b.mean_replicas_found());
  EXPECT_EQ(a.mean_messages_per_forwarder(), b.mean_messages_per_forwarder());
  EXPECT_EQ(a.hit_hops().count(), b.hit_hops().count());
}

TEST(BatchedDriverDifferential, BatchFlagAndThreadCountPreserveAggregates) {
  Rng topo_rng(4242);
  const std::size_t n = 300;
  const Graph g = random_graph(n, 450, topo_rng);
  const CsrGraph csr = CsrGraph::from_graph(g);
  const ObjectCatalog catalog(n, 8, 0.02, 9);
  FloodOptions options;
  options.ttl = 3;
  const FloodEngine engine(csr, options);

  BatchQueryOptions query_options;
  query_options.queries = 200;  // spans several 64-wide batches per chunk
  query_options.seed = 77;

  query_options.batch = false;
  const QueryAggregate scalar =
      ParallelQueryDriver(1).run_batch(engine, catalog, query_options);

  query_options.batch = true;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const QueryAggregate batched = ParallelQueryDriver(threads).run_batch(
        engine, catalog, query_options);
    expect_same_aggregate(batched, scalar);
  }

  // An engine that cannot batch (suppression-off ablation) silently runs
  // the scalar loop under batch=true — same results, no surprises.
  FloodOptions no_suppression = options;
  no_suppression.duplicate_suppression = false;
  no_suppression.message_cap = 100'000;
  const FloodEngine ablation(csr, no_suppression);
  EXPECT_FALSE(ablation.supports_query_batching());
  query_options.batch = false;
  const QueryAggregate ab_scalar =
      ParallelQueryDriver(1).run_batch(ablation, catalog, query_options);
  query_options.batch = true;
  const QueryAggregate ab_batched =
      ParallelQueryDriver(2).run_batch(ablation, catalog, query_options);
  expect_same_aggregate(ab_batched, ab_scalar);
}

// Attaching a metrics registry must not perturb batched results (obs
// records are buffered and filtered, never fed back into the search).
TEST(BatchedDriverDifferential, MetricsAttachmentDoesNotPerturbResults) {
  Rng topo_rng(555);
  const std::size_t n = 120;
  const Graph g = random_graph(n, 180, topo_rng);
  const CsrGraph csr = CsrGraph::from_graph(g);
  const ObjectCatalog catalog(n, 4, 0.05, 3);
  const FloodEngine engine(csr, FloodOptions{.ttl = 3});

  BatchQueryOptions query_options;
  query_options.queries = 100;
  query_options.seed = 13;
  query_options.batch = true;
  const QueryAggregate bare =
      ParallelQueryDriver(1).run_batch(engine, catalog, query_options);

  obs::MetricsRegistry registry;
  query_options.metrics = &registry;
  const QueryAggregate observed =
      ParallelQueryDriver(2).run_batch(engine, catalog, query_options);
  expect_same_aggregate(observed, bare);

  // The batch counters actually ticked (100 queries / 64-wide batches).
  const auto snapshot = registry.snapshot();
  const obs::MetricValue* batches = snapshot.find("search.batches");
  ASSERT_NE(batches, nullptr);
  EXPECT_GE(batches->count, 2u);
  const obs::MetricValue* batched_q = snapshot.find("search.batched_queries");
  ASSERT_NE(batched_q, nullptr);
  EXPECT_EQ(batched_q->count, 100u);
}

}  // namespace
}  // namespace makalu
