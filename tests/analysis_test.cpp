// Tests for the analysis drivers: topology factory, flood/ABF experiment
// runners, spectral experiments, and the Table 2 comparison.
#include <gtest/gtest.h>

#include "analysis/abf_experiments.hpp"
#include "analysis/flood_experiments.hpp"
#include "analysis/spectral_experiments.hpp"
#include "analysis/topology_factory.hpp"
#include "analysis/traffic_comparison.hpp"
#include "graph/algorithms.hpp"
#include "net/latency_model.hpp"
#include "test_util.hpp"

namespace makalu {
namespace {

TEST(TopologyFactory, BuildsEveryKind) {
  const EuclideanModel latency(600, 3);
  for (const auto kind :
       {TopologyKind::kMakalu, TopologyKind::kGnutellaV04,
        TopologyKind::kGnutellaV06, TopologyKind::kKRegular}) {
    const auto built = build_topology(kind, latency, 7);
    EXPECT_EQ(built.kind, kind);
    EXPECT_EQ(built.graph.node_count(), 600u);
    EXPECT_TRUE(is_connected(CsrGraph::from_graph(built.graph)))
        << topology_name(kind);
  }
}

TEST(TopologyFactory, AuxiliaryDataPresence) {
  const EuclideanModel latency(400, 5);
  const auto makalu = build_topology(TopologyKind::kMakalu, latency, 1);
  EXPECT_EQ(makalu.capacity.size(), 400u);
  EXPECT_TRUE(makalu.is_ultrapeer.empty());
  const auto v06 = build_topology(TopologyKind::kGnutellaV06, latency, 1);
  EXPECT_EQ(v06.is_ultrapeer.size(), 400u);
  EXPECT_TRUE(v06.capacity.empty());
}

TEST(TopologyFactory, KRegularDegreeAdjustsForParity) {
  const EuclideanModel latency(401, 5);  // odd n
  TopologyFactoryOptions options;
  options.k_regular_degree = 7;  // 401*7 odd → generator must adapt
  const auto built =
      build_topology(TopologyKind::kKRegular, latency, 3, options);
  EXPECT_EQ(built.graph.node_count(), 401u);
}

TEST(TopologyFactory, NamesAreDistinct) {
  EXPECT_STRNE(topology_name(TopologyKind::kMakalu),
               topology_name(TopologyKind::kKRegular));
  EXPECT_STRNE(topology_name(TopologyKind::kGnutellaV04),
               topology_name(TopologyKind::kGnutellaV06));
}

TEST(FloodExperiments, BatchRunsAndCountsQueries) {
  const EuclideanModel latency(500, 9);
  const auto topology = build_topology(TopologyKind::kMakalu, latency, 2);
  FloodExperimentOptions options;
  options.queries = 50;
  options.runs = 2;
  options.replication_ratio = 0.02;
  options.ttl = 4;
  const auto agg = run_flood_batch(topology, options);
  EXPECT_EQ(agg.queries(), 100u);
  EXPECT_GT(agg.success_rate(), 0.5);
  EXPECT_GT(agg.mean_messages(), 0.0);
}

TEST(FloodExperiments, SuccessMonotoneInTtl) {
  const EuclideanModel latency(800, 11);
  const auto topology = build_topology(TopologyKind::kMakalu, latency, 4);
  FloodExperimentOptions options;
  options.queries = 60;
  options.runs = 1;
  options.replication_ratio = 0.01;
  const auto rates = success_vs_ttl(topology, options, 5);
  ASSERT_EQ(rates.size(), 6u);
  for (std::size_t t = 1; t < rates.size(); ++t) {
    EXPECT_GE(rates[t], rates[t - 1] - 0.05);  // monotone modulo noise
  }
  EXPECT_GT(rates[5], rates[0]);
}

TEST(FloodExperiments, FindMinTtlReachesTarget) {
  const EuclideanModel latency(600, 13);
  const auto topology = build_topology(TopologyKind::kMakalu, latency, 6);
  FloodExperimentOptions options;
  options.queries = 40;
  options.runs = 1;
  options.replication_ratio = 0.05;
  const auto result = find_min_ttl(topology, options, 0.9, 8);
  EXPECT_TRUE(result.reached);
  EXPECT_GE(result.at_min_ttl.success_rate(), 0.9);
  EXPECT_LE(result.min_ttl, 4u);
}

TEST(FloodExperiments, TwoTierDispatch) {
  const EuclideanModel latency(800, 15);
  const auto topology =
      build_topology(TopologyKind::kGnutellaV06, latency, 8);
  FloodExperimentOptions options;
  options.queries = 30;
  options.runs = 1;
  options.replication_ratio = 0.02;
  options.ttl = 4;
  const auto agg = run_flood_batch(topology, options);
  EXPECT_EQ(agg.queries(), 30u);
  EXPECT_GT(agg.mean_messages(), 0.0);
}

TEST(AbfExperiments, BatchAndSweep) {
  const EuclideanModel latency(400, 17);
  const auto topology = build_topology(TopologyKind::kMakalu, latency, 10);
  AbfExperimentOptions options;
  options.queries = 40;
  options.runs = 1;
  options.objects = 20;
  options.replication_ratio = 0.02;
  const auto agg = run_abf_batch(topology, 20, options);
  EXPECT_EQ(agg.queries(), 40u);
  EXPECT_GT(agg.success_rate(), 0.5);

  const auto rates = abf_success_vs_ttl(topology, options, 20);
  ASSERT_EQ(rates.size(), 21u);
  for (std::size_t t = 1; t < rates.size(); ++t) {
    EXPECT_GE(rates[t], rates[t - 1]);  // exact monotonicity by design
  }
  EXPECT_GT(rates[20], 0.5);
}

TEST(SpectralExperiments, NoFailureKeepsEveryone) {
  const EuclideanModel latency(300, 19);
  const auto topology = build_topology(TopologyKind::kMakalu, latency, 12);
  const auto result = spectrum_under_failure(topology.graph, 0.0);
  EXPECT_EQ(result.surviving_nodes, 300u);
  EXPECT_EQ(result.multiplicity_zero, 1u);  // connected
  EXPECT_EQ(result.spectrum.size(), 300u);
}

TEST(SpectralExperiments, TargetedFailureShrinksGraph) {
  const EuclideanModel latency(300, 21);
  const auto topology = build_topology(TopologyKind::kMakalu, latency, 14);
  const auto result = spectrum_under_failure(topology.graph, 0.1);
  EXPECT_EQ(result.surviving_nodes, 270u);
  EXPECT_DOUBLE_EQ(result.failure_fraction, 0.1);
  // Makalu's claim: remains one component under 10% targeted failure.
  EXPECT_EQ(result.multiplicity_zero, 1u);
}

TEST(SpectralExperiments, RandomAdversaryIsSeeded) {
  const EuclideanModel latency(200, 23);
  const auto topology = build_topology(TopologyKind::kMakalu, latency, 16);
  const auto a = spectrum_under_failure(topology.graph, 0.2, true, 5);
  const auto b = spectrum_under_failure(topology.graph, 0.2, true, 5);
  EXPECT_EQ(a.surviving_nodes, b.surviving_nodes);
  ASSERT_EQ(a.spectrum.size(), b.spectrum.size());
  EXPECT_EQ(a.spectrum, b.spectrum);
}

TEST(TrafficComparison, SmallScaleSanity) {
  TrafficComparisonOptions options;
  options.nodes = 2000;
  options.queries = 60;
  options.runs = 1;
  const auto result = run_traffic_comparison(options);
  // Gnutella column is the fixed 2006 profile.
  EXPECT_NEAR(result.gnutella.forward_fanout, 38.439, 1e-9);
  // Makalu column: per-forwarder fan-out ≈ mean degree (9.5 config),
  // far below Gnutella's 38.
  EXPECT_GT(result.makalu.forward_fanout, 3.0);
  EXPECT_LT(result.makalu.forward_fanout, 15.0);
  EXPECT_LT(result.makalu.outgoing_kbps(),
            result.gnutella.outgoing_kbps());
  EXPECT_GT(result.makalu_mean_degree, 7.0);
  EXPECT_LT(result.makalu_mean_degree, 11.0);
  // At 2000 nodes TTL-5 floods cover far more of the network than at
  // 100k, so success exceeds Gnutella's 6.9% comfortably.
  EXPECT_GT(result.makalu.observed_success_rate,
            result.gnutella.observed_success_rate);
}

}  // namespace
}  // namespace makalu
