// Tests for the hybrid flood/gossip engine (§4.4's epidemic extension).
#include <gtest/gtest.h>

#include "core/overlay_builder.hpp"
#include "net/latency_model.hpp"
#include "search/flood_search.hpp"
#include "search/gossip_flood.hpp"
#include "test_util.hpp"

namespace makalu {
namespace {

TEST(GossipFlood, ProbabilityOneEqualsPlainFlood) {
  const CsrGraph csr = CsrGraph::from_graph(testing::make_cycle(30));
  const ObjectCatalog catalog(30, 2, 0.1, 5);
  GossipFloodEngine gossip(csr);
  FloodEngine flood(csr);
  GossipFloodOptions gopts;
  gopts.ttl = 8;
  gopts.boundary_hops = 3;
  gopts.gossip_probability = 1.0;
  FloodOptions fopts;
  fopts.ttl = 8;
  Rng rng(1);
  for (ObjectId obj = 0; obj < 2; ++obj) {
    const auto g = gossip.run(0, obj, catalog, rng, gopts);
    const auto f = flood.run(0, obj, catalog, fopts);
    EXPECT_EQ(g.messages, f.messages);
    EXPECT_EQ(g.nodes_visited, f.nodes_visited);
    EXPECT_EQ(g.success, f.success);
    EXPECT_EQ(g.duplicates, f.duplicates);
  }
}

TEST(GossipFlood, IdenticalToFloodWithinBoundary) {
  // TTL <= boundary: gossip never engages, regardless of probability.
  const CsrGraph csr = CsrGraph::from_graph(testing::make_star(10));
  const ObjectCatalog catalog(11, 1, 0.1, 3);
  GossipFloodEngine gossip(csr);
  FloodEngine flood(csr);
  GossipFloodOptions gopts;
  gopts.ttl = 2;
  gopts.boundary_hops = 2;
  gopts.gossip_probability = 0.1;
  FloodOptions fopts;
  fopts.ttl = 2;
  Rng rng(2);
  const auto g = gossip.run(1, 0, catalog, rng, gopts);
  const auto f = flood.run(1, 0, catalog, fopts);
  EXPECT_EQ(g.messages, f.messages);
  EXPECT_EQ(g.nodes_visited, f.nodes_visited);
}

class GossipOnOverlay : public ::testing::Test {
 protected:
  static const CsrGraph& graph() {
    static const CsrGraph csr = [] {
      const EuclideanModel latency(4000, 17);
      return CsrGraph::from_graph(
          OverlayBuilder().build(latency, 3).graph);
    }();
    return csr;
  }
};

TEST_F(GossipOnOverlay, CutsMessagesPastBoundary) {
  const ObjectCatalog catalog(4000, 10, 0.001, 7);
  GossipFloodEngine gossip(graph());
  FloodEngine flood(graph());
  Rng rng(3);
  std::uint64_t gossip_msgs = 0;
  std::uint64_t flood_msgs = 0;
  std::size_t gossip_hits = 0;
  std::size_t flood_hits = 0;
  GossipFloodOptions gopts;
  gopts.ttl = 6;
  gopts.boundary_hops = 3;
  gopts.gossip_probability = 0.4;
  FloodOptions fopts;
  fopts.ttl = 6;
  for (int q = 0; q < 60; ++q) {
    const auto source = static_cast<NodeId>(rng.uniform_below(4000));
    const auto object = static_cast<ObjectId>(rng.uniform_below(10));
    const auto g = gossip.run(source, object, catalog, rng, gopts);
    const auto f = flood.run(source, object, catalog, fopts);
    gossip_msgs += g.messages;
    flood_msgs += f.messages;
    gossip_hits += g.success;
    flood_hits += f.success;
  }
  // Gossip must cut deep-flood cost substantially...
  EXPECT_LT(gossip_msgs, flood_msgs * 2 / 3);
  // ...while keeping most of the coverage-driven success.
  EXPECT_GE(gossip_hits * 10, flood_hits * 7);
}

TEST_F(GossipOnOverlay, LowerProbabilityMeansFewerMessages) {
  const ObjectCatalog catalog(4000, 5, 0.001, 9);
  GossipFloodEngine engine(graph());
  auto total_messages = [&](double p, std::uint64_t seed) {
    Rng rng(seed);
    GossipFloodOptions opts;
    opts.ttl = 6;
    opts.boundary_hops = 3;
    opts.gossip_probability = p;
    std::uint64_t total = 0;
    for (int q = 0; q < 30; ++q) {
      const auto source = static_cast<NodeId>(rng.uniform_below(4000));
      total += engine.run(source, 0, catalog, rng, opts).messages;
    }
    return total;
  };
  EXPECT_LT(total_messages(0.25, 4), total_messages(0.75, 4));
}

TEST(GossipFlood, RejectsZeroProbability) {
  const CsrGraph csr = CsrGraph::from_graph(testing::make_cycle(10));
  const ObjectCatalog catalog(10, 1, 0.1, 1);
  GossipFloodEngine engine(csr);
  GossipFloodOptions opts;
  opts.gossip_probability = 0.0;
  Rng rng(5);
  EXPECT_DEATH((void)engine.run(0, 0, catalog, rng, opts), "precondition");
}

}  // namespace
}  // namespace makalu
