// Tests for the eigensolvers and Laplacian spectral analysis, validated
// against closed-form spectra of canonical graphs.
#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "spectral/eigen.hpp"
#include "spectral/laplacian.hpp"
#include "test_util.hpp"

namespace makalu {
namespace {

using testing::make_barbell;
using testing::make_complete;
using testing::make_cycle;
using testing::make_path;
using testing::make_star;

TEST(DenseEigen, DiagonalMatrix) {
  SymmetricMatrix m(3);
  m.at(0, 0) = 3.0;
  m.at(1, 1) = 1.0;
  m.at(2, 2) = 2.0;
  const auto ev = symmetric_eigenvalues(std::move(m));
  ASSERT_EQ(ev.size(), 3u);
  EXPECT_NEAR(ev[0], 1.0, 1e-10);
  EXPECT_NEAR(ev[1], 2.0, 1e-10);
  EXPECT_NEAR(ev[2], 3.0, 1e-10);
}

TEST(DenseEigen, TwoByTwoClosedForm) {
  SymmetricMatrix m(2);
  m.at(0, 0) = 2.0;
  m.at(1, 1) = 3.0;
  m.set_symmetric(0, 1, 1.0);
  const auto ev = symmetric_eigenvalues(std::move(m));
  const double mid = 2.5;
  const double disc = std::sqrt(0.25 + 1.0);
  EXPECT_NEAR(ev[0], mid - disc, 1e-10);
  EXPECT_NEAR(ev[1], mid + disc, 1e-10);
}

TEST(DenseEigen, TraceAndFrobeniusPreserved) {
  // Eigenvalues must reproduce trace and sum of squares (Frobenius^2) of
  // a random symmetric matrix.
  Rng rng(5);
  const std::size_t n = 24;
  SymmetricMatrix m(n);
  double trace = 0.0;
  double frob2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double x = rng.normal();
      m.set_symmetric(i, j, x);
      frob2 += (i == j) ? x * x : 2.0 * x * x;
      if (i == j) trace += x;
    }
  }
  const auto ev = symmetric_eigenvalues(std::move(m));
  double ev_sum = 0.0;
  double ev_sq = 0.0;
  for (const double e : ev) {
    ev_sum += e;
    ev_sq += e * e;
  }
  EXPECT_NEAR(ev_sum, trace, 1e-8);
  EXPECT_NEAR(ev_sq, frob2, 1e-7);
}

TEST(TridiagonalEigen, KnownToeplitz) {
  // Tridiagonal with diag a, off b has eigenvalues a + 2b cos(k pi/(n+1)).
  const std::size_t n = 7;
  std::vector<double> diag(n, 2.0);
  std::vector<double> off(n - 1, -1.0);
  const auto ev = tridiagonal_eigenvalues(diag, off);
  for (std::size_t k = 1; k <= n; ++k) {
    const double expected =
        2.0 - 2.0 * std::cos(std::numbers::pi * static_cast<double>(k) /
                             static_cast<double>(n + 1));
    EXPECT_NEAR(ev[k - 1], expected, 1e-10);
  }
}

TEST(Laplacian, PathGraphSpectrum) {
  // Path P_n Laplacian eigenvalues: 2 - 2 cos(pi k / n), k = 0..n-1.
  const std::size_t n = 8;
  const CsrGraph csr = CsrGraph::from_graph(make_path(n));
  auto ev = symmetric_eigenvalues(dense_laplacian(csr));
  for (std::size_t k = 0; k < n; ++k) {
    const double expected =
        2.0 - 2.0 * std::cos(std::numbers::pi * static_cast<double>(k) /
                             static_cast<double>(n));
    EXPECT_NEAR(ev[k], expected, 1e-9) << "k=" << k;
  }
}

TEST(Laplacian, CompleteGraphSpectrum) {
  // K_n: eigenvalue 0 once and n with multiplicity n-1.
  const std::size_t n = 6;
  const auto ev =
      symmetric_eigenvalues(dense_laplacian(CsrGraph::from_graph(
          make_complete(n))));
  EXPECT_NEAR(ev[0], 0.0, 1e-9);
  for (std::size_t k = 1; k < n; ++k) {
    EXPECT_NEAR(ev[k], static_cast<double>(n), 1e-9);
  }
}

TEST(Laplacian, MatvecMatchesDense) {
  const CsrGraph csr = CsrGraph::from_graph(make_star(4));
  const auto dense = dense_laplacian(csr);
  Rng rng(3);
  std::vector<double> x(5);
  for (auto& v : x) v = rng.normal();
  std::vector<double> y;
  laplacian_matvec(csr, x, y);
  for (std::size_t i = 0; i < 5; ++i) {
    double expected = 0.0;
    for (std::size_t j = 0; j < 5; ++j) expected += dense.at(i, j) * x[j];
    EXPECT_NEAR(y[i], expected, 1e-12);
  }
}

TEST(NormalizedLaplacian, EigenvaluesInZeroTwo) {
  const CsrGraph csr = CsrGraph::from_graph(make_barbell(5));
  const auto ev = normalized_laplacian_spectrum(csr);
  for (const double e : ev) {
    EXPECT_GE(e, -1e-9);
    EXPECT_LE(e, 2.0 + 1e-9);
  }
}

TEST(NormalizedLaplacian, CompleteGraph) {
  // K_n normalized Laplacian: 0 once, n/(n-1) with multiplicity n-1.
  const std::size_t n = 7;
  const auto ev =
      normalized_laplacian_spectrum(CsrGraph::from_graph(make_complete(n)));
  EXPECT_NEAR(ev[0], 0.0, 1e-9);
  for (std::size_t k = 1; k < n; ++k) {
    EXPECT_NEAR(ev[k], static_cast<double>(n) / static_cast<double>(n - 1),
                1e-9);
  }
}

TEST(NormalizedLaplacian, ZeroMultiplicityCountsComponents) {
  Graph g(9);
  // Three separate triangles.
  for (NodeId base : {0u, 3u, 6u}) {
    g.add_edge(base, base + 1);
    g.add_edge(base + 1, base + 2);
    g.add_edge(base, base + 2);
  }
  const auto ev = normalized_laplacian_spectrum(CsrGraph::from_graph(g));
  EXPECT_EQ(eigenvalue_multiplicity(ev, 0.0, 1e-8), 3u);
}

TEST(NormalizedLaplacian, StarHasEigenvalueOneMultiplicity) {
  // Star K_{1,n}: normalized spectrum is {0, 1 (n-1 times), 2} — the
  // eigenvalue-1 mass is exactly the paper's "weakly connected edge
  // nodes" signal.
  const auto ev =
      normalized_laplacian_spectrum(CsrGraph::from_graph(make_star(6)));
  EXPECT_EQ(eigenvalue_multiplicity(ev, 1.0, 1e-8), 5u);
  EXPECT_EQ(eigenvalue_multiplicity(ev, 0.0, 1e-8), 1u);
  EXPECT_EQ(eigenvalue_multiplicity(ev, 2.0, 1e-8), 1u);
}

TEST(SpectrumPoints, NormalizedRanks) {
  const std::vector<double> spectrum{0.0, 0.5, 1.0, 1.5, 2.0};
  const auto points = normalized_spectrum_points(spectrum);
  ASSERT_EQ(points.size(), 5u);
  EXPECT_DOUBLE_EQ(points.front().first, 0.0);
  EXPECT_DOUBLE_EQ(points.back().first, 1.0);
  EXPECT_DOUBLE_EQ(points[2].first, 0.5);
  EXPECT_DOUBLE_EQ(points[2].second, 1.0);
}

TEST(Lanczos, LargestEigenvalueOfDiagonalOperator) {
  const std::size_t n = 50;
  const SymmetricOperator op = [](const std::vector<double>& x,
                                  std::vector<double>& y) {
    y.resize(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      y[i] = static_cast<double>(i + 1) * x[i];
    }
  };
  EXPECT_NEAR(lanczos_extreme_eigenvalue(op, n), 50.0, 1e-6);
}

TEST(Lanczos, DeflationRemovesTopEigenvector) {
  const std::size_t n = 40;
  const SymmetricOperator op = [](const std::vector<double>& x,
                                  std::vector<double>& y) {
    y.resize(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      y[i] = static_cast<double>(i + 1) * x[i];
    }
  };
  // Deflate e_{n-1} (the top eigenvector): next eigenvalue is n-1.
  std::vector<double> top(n, 0.0);
  top[n - 1] = 1.0;
  EXPECT_NEAR(lanczos_extreme_eigenvalue(op, n, {top}),
              static_cast<double>(n - 1), 1e-6);
}

TEST(AlgebraicConnectivity, CycleClosedForm) {
  // λ1(C_n) = 2 - 2 cos(2π/n).
  const std::size_t n = 20;
  const double expected =
      2.0 - 2.0 * std::cos(2.0 * std::numbers::pi / static_cast<double>(n));
  EXPECT_NEAR(algebraic_connectivity(CsrGraph::from_graph(make_cycle(n))),
              expected, 1e-5);
}

TEST(AlgebraicConnectivity, CompleteGraphEqualsN) {
  EXPECT_NEAR(
      algebraic_connectivity(CsrGraph::from_graph(make_complete(12))),
      12.0, 1e-5);
}

TEST(AlgebraicConnectivity, MatchesDenseSolverOnIrregularGraph) {
  Graph g(12);
  Rng rng(77);
  // Random connected-ish graph; stitch with a cycle to guarantee
  // connectivity.
  for (NodeId v = 0; v < 12; ++v) g.add_edge(v, (v + 1) % 12);
  for (int i = 0; i < 14; ++i) {
    g.add_edge(static_cast<NodeId>(rng.uniform_below(12)),
               static_cast<NodeId>(rng.uniform_below(12)));
  }
  const CsrGraph csr = CsrGraph::from_graph(g);
  const auto dense = symmetric_eigenvalues(dense_laplacian(csr));
  EXPECT_NEAR(algebraic_connectivity(csr), dense[1], 1e-5);
}

TEST(AlgebraicConnectivity, BarbellIsNearZero) {
  // Two K_10 joined by one edge: severe bottleneck → tiny λ1.
  const double lambda1 =
      algebraic_connectivity(CsrGraph::from_graph(make_barbell(10)));
  EXPECT_GT(lambda1, 0.0);
  EXPECT_LT(lambda1, 0.3);
}

TEST(AlgebraicConnectivity, ExpanderBeatsBottleneck) {
  const double barbell =
      algebraic_connectivity(CsrGraph::from_graph(make_barbell(10)));
  const double complete =
      algebraic_connectivity(CsrGraph::from_graph(make_complete(20)));
  EXPECT_GT(complete, 10.0 * barbell);
}

}  // namespace
}  // namespace makalu
