// Thread-count determinism regressions for the deterministic maintenance
// path: OverlayBuilder::build(latency, seed, pool), a standalone
// deterministic_sweep, and a full simulate_churn run must produce
// bit-identical results at 1, 2, and 8 worker threads (and inline with no
// pool at all). These are the guarantees the parallel sweep was designed
// around — any divergence means a scheduling or sharing bug.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/overlay_builder.hpp"
#include "core/rating_cache.hpp"
#include "graph/algorithms.hpp"
#include "net/latency_model.hpp"
#include "search/churn.hpp"
#include "support/thread_pool.hpp"

namespace makalu {
namespace {

// Sorted adjacency lists: equal iff the graphs have identical edge sets
// (neighbor-list order is not meaningful).
std::vector<std::vector<NodeId>> canonical(const Graph& g) {
  std::vector<std::vector<NodeId>> adj(g.node_count());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const auto nbrs = g.neighbors(u);
    adj[u].assign(nbrs.begin(), nbrs.end());
    std::sort(adj[u].begin(), adj[u].end());
  }
  return adj;
}

void expect_same_overlay(const MakaluOverlay& a, const MakaluOverlay& b,
                         const char* what) {
  EXPECT_EQ(a.capacity, b.capacity) << what;
  EXPECT_EQ(canonical(a.graph), canonical(b.graph)) << what;
}

TEST(Determinism, DeterministicBuildIdenticalAcrossThreadCounts) {
  const EuclideanModel latency(300, 17);
  const OverlayBuilder builder;
  const MakaluOverlay inline_run = builder.build(latency, 99, nullptr);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    const MakaluOverlay pooled = builder.build(latency, 99, &pool);
    expect_same_overlay(inline_run, pooled, "build vs pooled build");
  }
}

TEST(Determinism, DeterministicBuildIsSeedSensitive) {
  // Guard against the degenerate way to pass the test above: a build that
  // ignored its seed would also be "deterministic".
  const EuclideanModel latency(200, 19);
  const OverlayBuilder builder;
  const MakaluOverlay a = builder.build(latency, 1, nullptr);
  const MakaluOverlay b = builder.build(latency, 2, nullptr);
  EXPECT_NE(canonical(a.graph), canonical(b.graph));
}

TEST(Determinism, SweepIdenticalAcrossThreadCounts) {
  // Damage a built overlay, then repair it with one deterministic sweep
  // under every thread count; graphs and change counts must agree.
  const EuclideanModel latency(250, 23);
  const OverlayBuilder builder;
  const MakaluOverlay base = builder.build(latency, 7);
  std::vector<bool> active(base.node_count(), true);
  Rng damage_rng(31);
  MakaluOverlay damaged = base;
  for (NodeId v = 0; v < damaged.node_count(); ++v) {
    if (damage_rng.chance(0.15)) damaged.graph.isolate(v);
  }

  MakaluOverlay reference;
  std::size_t reference_changes = 0;
  bool have_reference = false;
  for (const std::size_t threads : {0u, 1u, 2u, 8u}) {
    MakaluOverlay overlay = damaged;
    CachedRatingEngine cache(overlay.graph, latency,
                             builder.parameters().weights);
    ThreadPool pool(threads == 0 ? 1 : threads);
    SweepOptions sweep;
    sweep.seed = 0xfeedULL;
    sweep.active = &active;
    sweep.pool = threads == 0 ? nullptr : &pool;
    const std::size_t changes =
        builder.deterministic_sweep(overlay, cache, sweep);
    EXPECT_GT(changes, 0u);  // the damage is real; repairs must happen
    if (!have_reference) {
      reference = overlay;
      reference_changes = changes;
      have_reference = true;
    } else {
      expect_same_overlay(reference, overlay, "sweep across thread counts");
      EXPECT_EQ(reference_changes, changes);
    }
  }
}

TEST(Determinism, ChurnReportIdenticalAcrossThreadCounts) {
  const EuclideanModel latency(150, 29);
  const OverlayBuilder builder;
  ChurnOptions options;
  options.duration_ms = 40'000.0;
  options.seed = 5;

  ChurnReport reference;
  bool have_reference = false;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    options.maintenance_threads = threads;
    const ChurnReport report = simulate_churn(builder, latency, options);
    ASSERT_FALSE(report.samples.empty());
    if (!have_reference) {
      reference = report;
      have_reference = true;
      continue;
    }
    EXPECT_EQ(report.departures, reference.departures);
    EXPECT_EQ(report.arrivals, reference.arrivals);
    ASSERT_EQ(report.samples.size(), reference.samples.size());
    for (std::size_t i = 0; i < report.samples.size(); ++i) {
      const ChurnSample& a = report.samples[i];
      const ChurnSample& b = reference.samples[i];
      EXPECT_EQ(a.time_ms, b.time_ms) << "sample " << i;
      EXPECT_EQ(a.online, b.online) << "sample " << i;
      EXPECT_EQ(a.online_components, b.online_components) << "sample " << i;
      EXPECT_EQ(a.giant_fraction, b.giant_fraction) << "sample " << i;
      EXPECT_EQ(a.mean_degree, b.mean_degree) << "sample " << i;
      EXPECT_EQ(a.isolated_online, b.isolated_online) << "sample " << i;
    }
  }
}

TEST(Determinism, CachedJoinMatchesEngineJoin) {
  // The cache-backed join overload claims identical decisions and RNG
  // consumption to the from-scratch one; run both on twin overlays.
  const EuclideanModel latency(120, 37);
  const OverlayBuilder builder;
  MakaluOverlay a = builder.build(latency, 3);
  MakaluOverlay b = a;
  const NodeId joiner = 60;
  a.graph.isolate(joiner);
  b.graph.isolate(joiner);

  Rng rng_a(41);
  builder.join_node(a, latency, joiner, rng_a);

  Rng rng_b(41);
  CachedRatingEngine cache(b.graph, latency, builder.parameters().weights);
  builder.join_node(b, cache, joiner, rng_b);

  expect_same_overlay(a, b, "cached vs engine join");
  EXPECT_EQ(rng_a(), rng_b());  // generators advanced in lockstep
}

TEST(Determinism, TwoHopColorClassesAreIndependentSets) {
  // Structural invariant behind the parallel prune: any two same-class
  // nodes are at graph distance >= 3.
  const EuclideanModel latency(180, 43);
  const MakaluOverlay overlay = OverlayBuilder().build(latency, 13);
  const Graph& g = overlay.graph;
  std::vector<NodeId> nodes;
  for (NodeId u = 0; u < g.node_count(); u += 2) nodes.push_back(u);
  const auto classes = two_hop_color_classes(g, nodes);
  std::size_t total = 0;
  for (const auto& cls : classes) {
    total += cls.size();
    for (const NodeId u : cls) {
      for (const NodeId v : cls) {
        if (u == v) continue;
        EXPECT_FALSE(g.has_edge(u, v)) << u << "," << v;
        for (const NodeId w : g.neighbors(u)) {
          EXPECT_FALSE(g.has_edge(w, v))
              << "distance-2 pair in one class: " << u << "," << v;
        }
      }
    }
  }
  EXPECT_EQ(total, nodes.size());
}

}  // namespace
}  // namespace makalu
