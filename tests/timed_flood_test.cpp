// Tests for the latency-aware flood engine and the QRP extension of the
// two-tier engine.
#include <gtest/gtest.h>

#include "core/overlay_builder.hpp"
#include "net/latency_model.hpp"
#include "search/flood_search.hpp"
#include "search/timed_flood.hpp"
#include "search/two_tier_flood.hpp"
#include "test_util.hpp"
#include "topology/generators.hpp"

namespace makalu {
namespace {

using testing::ConstantLatency;
using testing::MatrixLatency;
using testing::make_path;

ObjectCatalog catalog_on(std::size_t n, NodeId holder) {
  for (std::uint64_t seed = 0; seed < 40'000; ++seed) {
    ObjectCatalog catalog(n, 1, 1.0 / static_cast<double>(n), seed);
    if (catalog.holders(0).front() == holder) return catalog;
  }
  ADD_FAILURE() << "could not place object";
  return ObjectCatalog(n, 1, 1.0, 0);
}

TEST(TimedFlood, ConstantLatencyMatchesHopSemantics) {
  const CsrGraph csr = CsrGraph::from_graph(make_path(6));
  const ConstantLatency latency(6, 10.0);
  TimedFloodEngine timed(csr, latency);
  const auto catalog = catalog_on(6, 4);
  const auto r = timed.run(0, 0, catalog, 5);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.first_hit_hop, 4u);
  EXPECT_DOUBLE_EQ(r.first_hit_ms, 40.0);       // 4 hops x 10 ms
  EXPECT_DOUBLE_EQ(r.response_ms, 80.0);        // + reverse path
  // Message/visit accounting agrees with the synchronous engine.
  FloodEngine sync(csr);
  FloodOptions fopts;
  fopts.ttl = 5;
  const auto s = sync.run(0, 0, catalog, fopts);
  EXPECT_EQ(r.messages, s.messages);
  EXPECT_EQ(r.nodes_visited, s.nodes_visited);
  EXPECT_EQ(r.duplicates, s.duplicates);
}

TEST(TimedFlood, FirstHitFollowsLatencyNotHops) {
  // Triangle-ish: 0 connects to 1 (slow, direct to replica at 1) and to
  // 2 (fast) which connects to 3 (fast) holding a second replica... use a
  // single object held at BOTH 1 and 3 cannot be built from catalog_on;
  // instead: object at node 3 only, slow direct edge 0-3 vs fast 2-hop
  // path 0-2-3. Earliest arrival must take the fast path.
  std::vector<std::vector<double>> m{
      {0, 1, 5, 100},
      {1, 0, 5, 5},
      {5, 5, 0, 5},
      {100, 5, 5, 0},
  };
  Graph g(4);
  g.add_edge(0, 3);  // direct but 100 ms
  g.add_edge(0, 2);  // 5 ms
  g.add_edge(2, 3);  // 5 ms
  const CsrGraph csr = CsrGraph::from_graph(g);
  const MatrixLatency latency(m);
  TimedFloodEngine timed(csr, latency);
  const auto catalog = catalog_on(4, 3);
  const auto r = timed.run(0, 0, catalog, 4);
  ASSERT_TRUE(r.success);
  EXPECT_DOUBLE_EQ(r.first_hit_ms, 10.0);   // via 0-2-3
  EXPECT_DOUBLE_EQ(r.response_ms, 20.0);
  EXPECT_EQ(r.first_hit_hop, 2u);
}

TEST(TimedFlood, MissReportsNegativeTimes) {
  const CsrGraph csr = CsrGraph::from_graph(make_path(8));
  const ConstantLatency latency(8, 1.0);
  TimedFloodEngine timed(csr, latency);
  const auto catalog = catalog_on(8, 7);
  const auto r = timed.run(0, 0, catalog, 3);  // too shallow
  EXPECT_FALSE(r.success);
  EXPECT_LT(r.first_hit_ms, 0.0);
  EXPECT_LT(r.response_ms, 0.0);
  EXPECT_GT(r.quiescent_ms, 0.0);
}

TEST(TimedFlood, WorksOnRealOverlay) {
  const EuclideanModel latency(800, 3);
  const MakaluOverlay overlay = OverlayBuilder().build(latency, 9);
  const CsrGraph csr = CsrGraph::from_graph(overlay.graph);
  const ObjectCatalog catalog(800, 5, 0.02, 7);
  TimedFloodEngine timed(csr, latency);
  Rng rng(5);
  for (int q = 0; q < 10; ++q) {
    const auto source = static_cast<NodeId>(rng.uniform_below(800));
    const auto r = timed.run(source, 0, catalog, 4);
    if (r.success) {
      EXPECT_GE(r.response_ms, r.first_hit_ms);
      EXPECT_GE(r.quiescent_ms, r.first_hit_ms);
    }
  }
}

// --- QRP -----------------------------------------------------------------

class QrpTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kNodes = 3000;

  static const TwoTierGenerator::Result& topo() {
    static const auto result = TwoTierGenerator().generate(kNodes, 5);
    return result;
  }
};

TEST_F(QrpTest, ReducesMessagesWithoutChangingSuccess) {
  const CsrGraph csr = CsrGraph::from_graph(topo().graph);
  const ObjectCatalog catalog(kNodes, 20, 0.01, 9);
  TwoTierFloodEngine engine(csr, topo().is_ultrapeer);
  engine.prepare_qrp(catalog);
  ASSERT_TRUE(engine.qrp_ready());

  Rng rng(11);
  std::uint64_t plain_msgs = 0;
  std::uint64_t qrp_msgs = 0;
  std::size_t plain_hits = 0;
  std::size_t qrp_hits = 0;
  for (int q = 0; q < 60; ++q) {
    const auto source = static_cast<NodeId>(rng.uniform_below(kNodes));
    const auto object = static_cast<ObjectId>(rng.uniform_below(20));
    TwoTierFloodOptions plain;
    plain.ttl = 4;
    TwoTierFloodOptions qrp = plain;
    qrp.use_qrp = true;
    const auto a = engine.run(source, object, catalog, plain);
    const auto b = engine.run(source, object, catalog, qrp);
    plain_msgs += a.messages;
    qrp_msgs += b.messages;
    plain_hits += a.success;
    qrp_hits += b.success;
  }
  // QRP digests have no false negatives: identical success.
  EXPECT_EQ(plain_hits, qrp_hits);
  // QRP removes (almost all of) the UP->leaf transmissions — with ~30
  // UP-links and ~11 leaf children per ultrapeer that is ~25% of the
  // flood; the UP-UP mesh traffic it cannot touch dominates the rest
  // (which is the paper's §1/§5 point about where v0.6's bandwidth goes).
  EXPECT_LT(qrp_msgs, plain_msgs * 85 / 100);
  EXPECT_GT(qrp_msgs, plain_msgs / 2);
}

TEST_F(QrpTest, FindsReplicasOnLeaves) {
  const CsrGraph csr = CsrGraph::from_graph(topo().graph);
  // Every replica is on a leaf: QRP must still find them.
  ObjectCatalog catalog(kNodes, 1, 1.0 / kNodes, 13);
  NodeId leaf_holder = kInvalidNode;
  for (NodeId v = 0; v < kNodes; ++v) {
    if (!topo().is_ultrapeer[v]) {
      leaf_holder = v;
      break;
    }
  }
  ASSERT_NE(leaf_holder, kInvalidNode);
  catalog.add_replica(0, leaf_holder);
  TwoTierFloodEngine engine(csr, topo().is_ultrapeer);
  engine.prepare_qrp(catalog);
  TwoTierFloodOptions qrp;
  qrp.ttl = 6;
  qrp.use_qrp = true;
  // Query from an ultrapeer far from the leaf.
  NodeId source = kInvalidNode;
  for (NodeId v = 0; v < kNodes; ++v) {
    if (topo().is_ultrapeer[v] && !csr.neighbors(v).empty() &&
        v != leaf_holder) {
      source = v;
      break;
    }
  }
  const auto r = engine.run(source, 0, catalog, qrp);
  EXPECT_TRUE(r.success);
}

TEST_F(QrpTest, RequiresPreparation) {
  const CsrGraph csr = CsrGraph::from_graph(topo().graph);
  const ObjectCatalog catalog(kNodes, 2, 0.01, 15);
  TwoTierFloodEngine engine(csr, topo().is_ultrapeer);
  TwoTierFloodOptions qrp;
  qrp.use_qrp = true;
  EXPECT_DEATH((void)engine.run(0, 0, catalog, qrp), "precondition");
}

}  // namespace
}  // namespace makalu
