// Tests for the live transport stack (net/): the hashed timer wheel,
// the in-process loopback hub, the real UDP loopback transport, and the
// seeded fault shim. Everything here is byte-level — the protocol layer
// over these transports is exercised in cluster_test.cpp.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "net/fault_shim.hpp"
#include "net/loopback_transport.hpp"
#include "net/timer_wheel.hpp"
#include "net/udp_transport.hpp"

namespace makalu {
namespace {

using net::FaultShim;
using net::FaultShimOptions;
using net::LoopbackHub;
using net::TimerWheel;
using net::UdpTransport;

// --- TimerWheel --------------------------------------------------------------

TEST(TimerWheel, FiresInDeadlineOrderWithFifoTies) {
  TimerWheel wheel(1.0, 8);  // few slots so ticks collide in buckets
  std::vector<int> fired;
  wheel.schedule(0.0, 5.0, [&] { fired.push_back(1); });
  wheel.schedule(0.0, 2.0, [&] { fired.push_back(2); });
  wheel.schedule(0.0, 5.0, [&] { fired.push_back(3); });  // tie with #1
  wheel.schedule(0.0, 2.0, [&] { fired.push_back(4); });  // tie with #2
  EXPECT_EQ(wheel.pending(), 4u);
  EXPECT_EQ(wheel.advance(1.0), 0u);
  EXPECT_EQ(wheel.advance(10.0), 4u);
  EXPECT_EQ(fired, (std::vector<int>{2, 4, 1, 3}));
  EXPECT_EQ(wheel.pending(), 0u);
  EXPECT_TRUE(std::isinf(wheel.next_deadline_ms()));
}

TEST(TimerWheel, ZeroDelayRoundsUpToNextTickNeverFiresInline) {
  TimerWheel wheel(1.0, 16);
  bool fired = false;
  wheel.schedule(3.7, 0.0, [&] { fired = true; });
  EXPECT_FALSE(fired);
  EXPECT_EQ(wheel.advance(3.7), 0u);  // same instant: not yet due
  EXPECT_EQ(wheel.advance(5.0), 1u);
  EXPECT_TRUE(fired);
}

TEST(TimerWheel, CancelPreventsFiringAndDoubleCancelIsFalse) {
  TimerWheel wheel;
  bool fired = false;
  const auto id = wheel.schedule(0.0, 3.0, [&] { fired = true; });
  EXPECT_TRUE(wheel.cancel(id));
  EXPECT_FALSE(wheel.cancel(id));
  EXPECT_EQ(wheel.advance(10.0), 0u);
  EXPECT_FALSE(fired);
  EXPECT_FALSE(wheel.cancel(net::kInvalidTimer));
}

TEST(TimerWheel, DeadlinesBeyondOneRevolutionWaitTheirTurn) {
  TimerWheel wheel(1.0, 8);  // revolution = 8 ticks
  std::vector<int> fired;
  wheel.schedule(0.0, 3.0, [&] { fired.push_back(1); });
  wheel.schedule(0.0, 11.0, [&] { fired.push_back(2); });  // same slot as #1
  wheel.schedule(0.0, 19.0, [&] { fired.push_back(3); });  // two laps out
  EXPECT_EQ(wheel.advance(4.0), 1u);
  EXPECT_EQ(fired, (std::vector<int>{1}));
  EXPECT_EQ(wheel.advance(12.0), 1u);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_EQ(wheel.advance(20.0), 1u);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(TimerWheel, CallbacksMayScheduleMoreTimers) {
  TimerWheel wheel(1.0, 16);
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 5) wheel.schedule(wheel.tick_ms() * chain, 1.0, step);
  };
  wheel.schedule(0.0, 1.0, step);
  // Each advance fires at most the due links; drive far enough for all 5.
  std::size_t total = 0;
  for (double t = 1.0; t <= 12.0; t += 1.0) total += wheel.advance(t);
  EXPECT_EQ(total, 5u);
  EXPECT_EQ(chain, 5);
}

TEST(TimerWheel, NextDeadlineTracksEarliestPending) {
  TimerWheel wheel(1.0, 32);
  wheel.schedule(0.0, 9.0, [] {});
  const auto id = wheel.schedule(0.0, 4.0, [] {});
  EXPECT_LE(wheel.next_deadline_ms(), 5.0 + 1.0);
  EXPECT_GE(wheel.next_deadline_ms(), 4.0);
  wheel.cancel(id);
  EXPECT_GE(wheel.next_deadline_ms(), 9.0);
}

// --- LoopbackHub -------------------------------------------------------------

TEST(Loopback, DeliversBytesBetweenEndpointsInVirtualTime) {
  LoopbackHub hub(0.5);
  auto& a = hub.endpoint(1);
  auto& b = hub.endpoint(2);
  std::vector<std::pair<NodeId, std::string>> got;
  b.set_receive_handler([&](NodeId from, const std::uint8_t* data,
                            std::size_t size) {
    got.emplace_back(from, std::string(reinterpret_cast<const char*>(data),
                                       size));
  });
  const std::string hello = "hello";
  a.send(2, reinterpret_cast<const std::uint8_t*>(hello.data()),
         hello.size());
  EXPECT_TRUE(got.empty());  // nothing delivers outside run()
  hub.run_until_idle();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].first, 1u);
  EXPECT_EQ(got[0].second, "hello");
  EXPECT_DOUBLE_EQ(hub.now_ms(), 0.5);
  EXPECT_EQ(a.stats().datagrams_sent, 1u);
  EXPECT_EQ(b.stats().datagrams_received, 1u);
  EXPECT_EQ(b.stats().bytes_received, hello.size());
}

TEST(Loopback, TimersAndDeliveriesInterleaveInTimeOrder) {
  LoopbackHub hub(1.0);
  auto& a = hub.endpoint(1);
  auto& b = hub.endpoint(2);
  std::vector<std::string> order;
  b.set_receive_handler(
      [&](NodeId, const std::uint8_t*, std::size_t) { order.push_back("rx"); });
  a.schedule(0.5, [&] { order.push_back("t0.5"); });
  const std::uint8_t byte = 0;
  a.send(2, &byte, 1);  // delivers at 1.0
  a.schedule(1.5, [&] { order.push_back("t1.5"); });
  hub.run_until_idle();
  EXPECT_EQ(order, (std::vector<std::string>{"t0.5", "rx", "t1.5"}));
}

TEST(Loopback, CancelledTimerDoesNotFire) {
  LoopbackHub hub;
  auto& a = hub.endpoint(1);
  bool fired = false;
  const auto id = a.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(a.cancel(id));
  EXPECT_FALSE(a.cancel(id));
  hub.run_until_idle();
  EXPECT_FALSE(fired);
}

TEST(Loopback, RunForLeavesFutureEventsQueued) {
  LoopbackHub hub;
  auto& a = hub.endpoint(1);
  int fired = 0;
  a.schedule(1.0, [&] { ++fired; });
  a.schedule(5.0, [&] { ++fired; });
  hub.run_for(2.0);
  EXPECT_EQ(fired, 1);
  hub.run_until_idle();
  EXPECT_EQ(fired, 2);
}

// --- UdpTransport ------------------------------------------------------------

TEST(UdpTransport, LoopbackSendReceiveBetweenTwoSockets) {
  UdpTransport a;
  UdpTransport b;
  ASSERT_NE(a.port(), 0);
  ASSERT_NE(b.port(), 0);
  a.add_peer(2, b.port());
  b.add_peer(1, a.port());
  std::vector<std::pair<NodeId, std::string>> got;
  b.set_receive_handler([&](NodeId from, const std::uint8_t* data,
                            std::size_t size) {
    got.emplace_back(from, std::string(reinterpret_cast<const char*>(data),
                                       size));
  });
  const std::string ping = "ping!";
  a.send(2, reinterpret_cast<const std::uint8_t*>(ping.data()), ping.size());
  // Loopback delivery is fast but asynchronous; poll with a deadline.
  for (int i = 0; i < 200 && got.empty(); ++i) b.poll(10.0);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].first, 1u);
  EXPECT_EQ(got[0].second, "ping!");
  EXPECT_EQ(a.stats().datagrams_sent, 1u);
  EXPECT_EQ(b.stats().datagrams_received, 1u);
}

TEST(UdpTransport, UnknownPeerCountsSendErrorAndUnknownSenderIsDropped) {
  UdpTransport a;
  UdpTransport b;
  const std::uint8_t byte = 7;
  a.send(99, &byte, 1);  // no such peer mapped
  EXPECT_EQ(a.stats().send_errors, 1u);
  EXPECT_EQ(a.stats().datagrams_sent, 0u);

  // b never registered a's port: the datagram must be counted, not
  // dispatched.
  a.add_peer(2, b.port());
  bool dispatched = false;
  b.set_receive_handler(
      [&](NodeId, const std::uint8_t*, std::size_t) { dispatched = true; });
  a.send(2, &byte, 1);
  for (int i = 0; i < 200 && b.stats().unknown_sender == 0; ++i) b.poll(10.0);
  EXPECT_EQ(b.stats().unknown_sender, 1u);
  EXPECT_FALSE(dispatched);
}

TEST(UdpTransport, UnknownSenderHandlerReceivesRawDatagram) {
  UdpTransport a;
  UdpTransport b;
  a.add_peer(2, b.port());
  std::uint16_t seen_port = 0;
  std::string seen_text;
  b.set_unknown_sender_handler(
      [&](std::uint16_t from_port, const std::uint8_t* data,
          std::size_t size) {
        seen_port = from_port;
        seen_text.assign(reinterpret_cast<const char*>(data), size);
      });
  const std::string line = "REGISTER 4 12345";
  a.send(2, reinterpret_cast<const std::uint8_t*>(line.data()), line.size());
  for (int i = 0; i < 200 && seen_port == 0; ++i) b.poll(10.0);
  EXPECT_EQ(seen_port, a.port());
  EXPECT_EQ(seen_text, line);
  EXPECT_EQ(b.stats().unknown_sender, 0u);
}

TEST(UdpTransport, WallClockTimersFire) {
  UdpTransport a;
  int fired = 0;
  a.schedule(5.0, [&] { ++fired; });
  const auto cancelled = a.schedule(5.0, [&] { ++fired; });
  EXPECT_TRUE(a.cancel(cancelled));
  const double start = a.now_ms();
  while (fired == 0 && a.now_ms() - start < 2000.0) a.poll(20.0);
  EXPECT_EQ(fired, 1);
  EXPECT_GE(a.now_ms() - start, 5.0 - 1e-9);
}

// --- FaultShim ---------------------------------------------------------------

/// Counts verdicts for `sends` datagrams from one shim to peers 1..peers.
net::TransportStats shim_verdicts(const FaultShimOptions& options,
                                  std::uint64_t seed, int sends, int peers) {
  LoopbackHub hub;
  auto& inner = hub.endpoint(0);
  FaultShim shim(inner, options, seed);
  const std::uint8_t byte = 0;
  for (int i = 0; i < sends; ++i) {
    shim.send(static_cast<NodeId>(1 + (i % peers)), &byte, 1);
  }
  hub.run_until_idle();
  return shim.stats();
}

TEST(FaultShim, InertShimIsAPassThrough) {
  LoopbackHub hub(0.25);
  auto& inner = hub.endpoint(0);
  auto& sink = hub.endpoint(1);
  FaultShim shim(inner, FaultShimOptions{}, 42);
  int received = 0;
  sink.set_receive_handler(
      [&](NodeId, const std::uint8_t*, std::size_t) { ++received; });
  const std::uint8_t byte = 1;
  for (int i = 0; i < 50; ++i) shim.send(1, &byte, 1);
  hub.run_until_idle();
  EXPECT_EQ(received, 50);
  EXPECT_DOUBLE_EQ(hub.now_ms(), 0.25);  // no added latency
  const auto& stats = shim.stats();
  EXPECT_EQ(stats.shim_dropped, 0u);
  EXPECT_EQ(stats.shim_duplicated, 0u);
  EXPECT_EQ(stats.shim_delayed, 0u);
  EXPECT_EQ(stats.shim_blackholed, 0u);
}

TEST(FaultShim, SameSeedSameVerdictsDifferentSeedDiverges) {
  FaultShimOptions options;
  options.drop = 0.2;
  options.duplicate = 0.1;
  options.reorder = 0.15;
  options.jitter_ms = 2.0;
  const auto run1 = shim_verdicts(options, 7, 400, 3);
  const auto run2 = shim_verdicts(options, 7, 400, 3);
  EXPECT_EQ(run1.shim_dropped, run2.shim_dropped);
  EXPECT_EQ(run1.shim_duplicated, run2.shim_duplicated);
  EXPECT_EQ(run1.shim_delayed, run2.shim_delayed);
  EXPECT_GT(run1.shim_dropped, 0u);
  EXPECT_GT(run1.shim_duplicated, 0u);

  const auto other = shim_verdicts(options, 8, 400, 3);
  EXPECT_TRUE(other.shim_dropped != run1.shim_dropped ||
              other.shim_duplicated != run1.shim_duplicated ||
              other.shim_delayed != run1.shim_delayed);
}

TEST(FaultShim, VerdictStreamIsPerDestination) {
  // The k-th datagram to a given peer draws the same verdict regardless
  // of what is sent to other peers in between: interleaving traffic to a
  // second peer must not change peer 1's verdicts.
  FaultShimOptions options;
  options.drop = 0.3;

  auto dropped_to_peer1 = [&](bool interleave) {
    LoopbackHub hub;
    auto& inner = hub.endpoint(0);
    auto& peer1 = hub.endpoint(1);
    hub.endpoint(2);
    FaultShim shim(inner, options, 99);
    int received = 0;
    peer1.set_receive_handler(
        [&](NodeId, const std::uint8_t*, std::size_t) { ++received; });
    const std::uint8_t byte = 0;
    for (int i = 0; i < 200; ++i) {
      shim.send(1, &byte, 1);
      if (interleave) shim.send(2, &byte, 1);
    }
    hub.run_until_idle();
    return received;
  };
  EXPECT_EQ(dropped_to_peer1(false), dropped_to_peer1(true));
}

TEST(FaultShim, BlackholeSilencesWithoutRngAndHealRestores) {
  FaultShimOptions options;
  options.drop = 0.5;  // knobs active, but blackhole must not draw
  LoopbackHub hub;
  auto& inner = hub.endpoint(0);
  auto& sink = hub.endpoint(1);
  FaultShim shim(inner, options, 5);
  int received = 0;
  sink.set_receive_handler(
      [&](NodeId, const std::uint8_t*, std::size_t) { ++received; });

  shim.blackhole({1});
  EXPECT_TRUE(shim.is_blackholed(1));
  const std::uint8_t byte = 0;
  for (int i = 0; i < 20; ++i) shim.send(1, &byte, 1);
  hub.run_until_idle();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(shim.stats().shim_blackholed, 20u);
  EXPECT_EQ(shim.stats().shim_dropped, 0u);  // partition != coin flip

  // Verdict draws must not have advanced while blackholed: after heal()
  // the verdict sequence equals a fresh shim's.
  shim.heal();
  EXPECT_FALSE(shim.is_blackholed(1));
  for (int i = 0; i < 100; ++i) shim.send(1, &byte, 1);
  hub.run_until_idle();
  const auto after_heal = shim.stats().shim_dropped;

  LoopbackHub hub2;
  auto& inner2 = hub2.endpoint(0);
  hub2.endpoint(1);
  FaultShim fresh(inner2, options, 5);
  for (int i = 0; i < 100; ++i) fresh.send(1, &byte, 1);
  hub2.run_until_idle();
  EXPECT_EQ(after_heal, fresh.stats().shim_dropped);
}

TEST(FaultShim, DuplicateDeliversTwiceAndJitterDelays) {
  FaultShimOptions options;
  options.duplicate = 1.0;
  LoopbackHub hub(0.0);
  auto& inner = hub.endpoint(0);
  auto& sink = hub.endpoint(1);
  FaultShim shim(inner, options, 11);
  int received = 0;
  sink.set_receive_handler(
      [&](NodeId, const std::uint8_t*, std::size_t) { ++received; });
  const std::uint8_t byte = 0;
  for (int i = 0; i < 10; ++i) shim.send(1, &byte, 1);
  hub.run_until_idle();
  EXPECT_EQ(received, 20);
  EXPECT_EQ(shim.stats().shim_duplicated, 10u);

  FaultShimOptions jitter;
  jitter.jitter_ms = 4.0;
  LoopbackHub hub2(0.0);
  auto& inner2 = hub2.endpoint(0);
  auto& sink2 = hub2.endpoint(1);
  FaultShim shim2(inner2, jitter, 11);
  double last_delivery = -1.0;
  sink2.set_receive_handler([&](NodeId, const std::uint8_t*, std::size_t) {
    last_delivery = hub2.now_ms();
  });
  shim2.send(1, &byte, 1);
  hub2.run_until_idle();
  EXPECT_GE(last_delivery, 0.0);
  EXPECT_LT(last_delivery, 4.0);
}

}  // namespace
}  // namespace makalu
