// Tests for the reference topology generators: degree structure,
// connectivity, and the distributional properties each family must have.
#include <algorithm>
#include <stdexcept>

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/metrics.hpp"
#include "support/stats.hpp"
#include "topology/generators.hpp"

namespace makalu {
namespace {

TEST(EnsureConnected, StitchesComponents) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.add_edge(4, 5);
  Rng rng(1);
  const std::size_t added = ensure_connected(g, rng);
  EXPECT_EQ(added, 2u);
  EXPECT_TRUE(is_connected(CsrGraph::from_graph(g)));
}

TEST(EnsureConnected, NoOpOnConnectedGraph) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  Rng rng(1);
  EXPECT_EQ(ensure_connected(g, rng), 0u);
}

TEST(PowerLaw, ConnectedAndDeterministic) {
  PowerLawGenerator gen;
  const Graph a = gen.generate(2000, 5);
  const Graph b = gen.generate(2000, 5);
  EXPECT_TRUE(is_connected(CsrGraph::from_graph(a)));
  EXPECT_EQ(a.edge_count(), b.edge_count());
  EXPECT_EQ(a.degree_sequence(), b.degree_sequence());
}

TEST(PowerLaw, HeavyTailedDegrees) {
  PowerLawGenerator gen;
  const Graph g = gen.generate(5000, 11);
  const auto degrees = g.degree_sequence();
  const auto max_degree = *std::max_element(degrees.begin(), degrees.end());
  const std::size_t ones =
      std::count(degrees.begin(), degrees.end(), std::size_t{1});
  // Power-law with exponent 2.3 and min degree 1: most nodes have degree
  // 1-2, but hubs with degree >= 20 exist.
  EXPECT_GT(max_degree, 20u);
  EXPECT_GT(ones, 5000u / 3);
  const auto stats = degree_stats(CsrGraph::from_graph(g));
  EXPECT_GT(stats.mean, 1.5);
  EXPECT_LT(stats.mean, 5.0);
}

TEST(PowerLaw, ExponentControlsTail) {
  PowerLawParameters steep;
  steep.exponent = 3.5;
  PowerLawParameters shallow;
  shallow.exponent = 1.8;
  const auto g_steep = PowerLawGenerator(steep).generate(4000, 3);
  const auto g_shallow = PowerLawGenerator(shallow).generate(4000, 3);
  const auto d_steep = g_steep.degree_sequence();
  const auto d_shallow = g_shallow.degree_sequence();
  EXPECT_LT(*std::max_element(d_steep.begin(), d_steep.end()),
            *std::max_element(d_shallow.begin(), d_shallow.end()));
}

TEST(PowerLaw, BarabasiAlbertVariant) {
  PowerLawParameters params;
  params.use_preferential_attachment = true;
  params.ba_edges_per_node = 3;
  const Graph g = PowerLawGenerator(params).generate(3000, 9);
  EXPECT_TRUE(is_connected(CsrGraph::from_graph(g)));
  const auto stats = degree_stats(CsrGraph::from_graph(g));
  // BA with m=3: mean degree ~ 2m = 6.
  EXPECT_NEAR(stats.mean, 6.0, 0.5);
  EXPECT_GT(stats.max, 30u);  // hubs
}

TEST(TwoTier, StructureInvariants) {
  TwoTierGenerator gen;
  const auto result = gen.generate(5000, 13);
  ASSERT_EQ(result.is_ultrapeer.size(), 5000u);
  const std::size_t ultrapeers =
      std::count(result.is_ultrapeer.begin(), result.is_ultrapeer.end(),
                 true);
  EXPECT_NEAR(static_cast<double>(ultrapeers), 0.15 * 5000.0, 50.0);

  // Leaves connect only to ultrapeers, with 1..3 parents (before the
  // connectivity stitch, which may add at most a handful of extra edges).
  std::size_t leaf_leaf_edges = 0;
  for (NodeId v = 0; v < 5000; ++v) {
    if (result.is_ultrapeer[v]) continue;
    for (const NodeId u : result.graph.neighbors(v)) {
      if (!result.is_ultrapeer[u]) ++leaf_leaf_edges;
    }
    EXPECT_GE(result.graph.degree(v), 1u);
    EXPECT_LE(result.graph.degree(v), 4u);
  }
  EXPECT_LE(leaf_leaf_edges, 4u);
  EXPECT_TRUE(is_connected(CsrGraph::from_graph(result.graph)));
}

TEST(TwoTier, UltrapeerMeshDegreeConcentrated) {
  TwoTierGenerator gen;
  const auto result = gen.generate(4000, 17);
  OnlineStats up_degrees;
  for (NodeId v = 0; v < 4000; ++v) {
    if (!result.is_ultrapeer[v]) continue;
    std::size_t up_links = 0;
    for (const NodeId u : result.graph.neighbors(v)) {
      up_links += result.is_ultrapeer[u];
    }
    up_degrees.add(static_cast<double>(up_links));
  }
  // "Ultrapeers try to maintain a fixed number of connections": the mesh
  // degree concentrates at/above the target (each UP initiates up to 30;
  // accepted connections push some above it).
  EXPECT_GE(up_degrees.mean(), 28.0);
  EXPECT_LT(up_degrees.stddev(), 8.0);
}

TEST(TwoTier, UltrapeerFractionParameter) {
  TwoTierParameters params;
  params.ultrapeer_fraction = 0.3;
  const auto result = TwoTierGenerator(params).generate(2000, 3);
  const auto ups = std::count(result.is_ultrapeer.begin(),
                              result.is_ultrapeer.end(), true);
  EXPECT_NEAR(static_cast<double>(ups), 600.0, 30.0);
}

TEST(KRegular, ExactDegrees) {
  KRegularGenerator gen(6);
  const Graph g = gen.generate(500, 3);
  EXPECT_TRUE(is_connected(CsrGraph::from_graph(g)));
  // Connectivity stitching (rare) may perturb a couple of nodes; almost
  // every node must have exactly degree 6.
  std::size_t exact = 0;
  for (NodeId v = 0; v < 500; ++v) exact += (g.degree(v) == 6);
  EXPECT_GE(exact, 498u);
}

TEST(KRegular, OddProductThrows) {
  KRegularGenerator gen(3);
  EXPECT_THROW(gen.generate(501, 1), std::invalid_argument);  // 3*501 odd
  EXPECT_NO_THROW(gen.generate(500, 1));
}

TEST(KRegular, Deterministic) {
  KRegularGenerator gen(8);
  const Graph a = gen.generate(300, 21);
  const Graph b = gen.generate(300, 21);
  EXPECT_EQ(a.degree_sequence(), b.degree_sequence());
  for (NodeId v = 0; v < 300; ++v) {
    const auto na = a.neighbors(v);
    for (const NodeId u : na) EXPECT_TRUE(b.has_edge(v, u));
  }
}

TEST(KRegular, LowDiameterExpanderLike) {
  const Graph g = KRegularGenerator(8).generate(2048, 5);
  const auto metrics = compute_path_metrics(CsrGraph::from_graph(g));
  // Random 8-regular on 2048 nodes: diameter about log_7(2048) ~ 4 (+1).
  EXPECT_LE(metrics.diameter_hops, 6u);
}

}  // namespace
}  // namespace makalu
