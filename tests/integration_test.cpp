// End-to-end integration tests reproducing the paper's headline claims at
// test-friendly scale: Makalu vs the reference topologies on search cost,
// fault tolerance, and spectral quality.
#include <gtest/gtest.h>

#include "analysis/abf_experiments.hpp"
#include "analysis/flood_experiments.hpp"
#include "analysis/spectral_experiments.hpp"
#include "analysis/topology_factory.hpp"
#include "graph/algorithms.hpp"
#include "graph/metrics.hpp"
#include "net/latency_model.hpp"
#include "sim/failure.hpp"

namespace makalu {
namespace {

// One shared setup: 3000-node Euclidean world.
class PaperClaims : public ::testing::Test {
 protected:
  static constexpr std::size_t kNodes = 3000;
  static const EuclideanModel& latency() {
    static const EuclideanModel model(kNodes, 42);
    return model;
  }
  static const BuiltTopology& makalu() {
    static const BuiltTopology t =
        build_topology(TopologyKind::kMakalu, latency(), 7);
    return t;
  }
  // The paper's §3 topology-analysis configuration: mean node degree
  // 10-12 (its flooding/§5 runs use mean 9.5, our default). The failure
  // analysis needs the heavier config: with mean 9.5 a handful of
  // capacity-6 nodes can lose every neighbor under a 30% targeted kill.
  static const BuiltTopology& makalu_analysis_config() {
    static const BuiltTopology t = [] {
      TopologyFactoryOptions options;
      options.makalu.capacity_min = 10;
      options.makalu.capacity_max = 14;
      return build_topology(TopologyKind::kMakalu, latency(), 7, options);
    }();
    return t;
  }
  static const BuiltTopology& power_law() {
    static const BuiltTopology t =
        build_topology(TopologyKind::kGnutellaV04, latency(), 7);
    return t;
  }
  static const BuiltTopology& two_tier() {
    static const BuiltTopology t =
        build_topology(TopologyKind::kGnutellaV06, latency(), 7);
    return t;
  }
  static const BuiltTopology& k_regular() {
    static const BuiltTopology t =
        build_topology(TopologyKind::kKRegular, latency(), 7);
    return t;
  }
};

TEST_F(PaperClaims, AlgebraicConnectivityOrdering) {
  // §3.3: k-regular ≈ Makalu >> v0.6 > v0.4.
  const double l_makalu = topology_algebraic_connectivity(makalu().graph);
  const double l_kreg = topology_algebraic_connectivity(k_regular().graph);
  const double l_v06 = topology_algebraic_connectivity(two_tier().graph);
  const double l_v04 = topology_algebraic_connectivity(power_law().graph);
  EXPECT_GT(l_makalu, 1.5);
  EXPECT_GT(l_kreg, 1.5);
  EXPECT_GT(l_makalu, l_v06);
  EXPECT_GT(l_v06, l_v04);
  EXPECT_LT(l_v04, 0.2);
}

TEST_F(PaperClaims, PathCostOrdering) {
  // §3.2: Makalu's characteristic path cost beats k-regular and v0.4.
  auto cost = [&](const BuiltTopology& t) {
    const CsrGraph csr = CsrGraph::from_graph(
        t.graph,
        [&](NodeId a, NodeId b) { return latency().latency(a, b); });
    PathMetricsOptions opts;
    opts.sample_sources = 100;
    return compute_path_metrics(csr, opts).characteristic_path_cost;
  };
  const double c_makalu = cost(makalu());
  EXPECT_LT(c_makalu, cost(k_regular()));
  EXPECT_LT(c_makalu, cost(power_law()));
}

TEST_F(PaperClaims, MakaluDiameterCompact) {
  PathMetricsOptions opts;
  opts.include_costs = false;
  const auto makalu_m =
      compute_path_metrics(CsrGraph::from_graph(makalu().graph), opts);
  const auto v04_m =
      compute_path_metrics(CsrGraph::from_graph(power_law().graph), opts);
  EXPECT_LT(makalu_m.diameter_hops, v04_m.diameter_hops);
  EXPECT_LE(makalu_m.diameter_hops, 8u);
}

TEST_F(PaperClaims, FloodingCheaperThanReferenceTopologies) {
  // Table 1's shape: at equal (high) success, Makalu floods use far fewer
  // messages than either Gnutella topology.
  FloodExperimentOptions options;
  options.replication_ratio = 0.01;
  options.queries = 60;
  options.runs = 1;
  const auto makalu_result = find_min_ttl(makalu(), options, 0.95, 10);
  const auto v04_result = find_min_ttl(power_law(), options, 0.95, 10);
  const auto v06_result = find_min_ttl(two_tier(), options, 0.95, 10);
  ASSERT_TRUE(makalu_result.reached);
  ASSERT_TRUE(v06_result.reached);
  EXPECT_LT(makalu_result.at_min_ttl.mean_messages(),
            v06_result.at_min_ttl.mean_messages());
  if (v04_result.reached) {
    EXPECT_LT(makalu_result.at_min_ttl.mean_messages(),
              v04_result.at_min_ttl.mean_messages());
    EXPECT_LE(makalu_result.min_ttl, v04_result.min_ttl);
  }
}

TEST_F(PaperClaims, TargetedFailureToleranceBeatsPowerLaw) {
  // §3.4 / Figure 1: after failing the top 30% most-connected nodes,
  // Makalu's survivors stay (nearly) fully connected; the power-law
  // topology shatters.
  const auto makalu_failed =
      select_top_degree_failures(makalu().graph, 0.30);
  const auto v04_failed =
      select_top_degree_failures(power_law().graph, 0.30);
  const auto makalu_survivors =
      apply_failures(makalu().graph, makalu_failed);
  const auto v04_survivors =
      apply_failures(power_law().graph, v04_failed);
  const auto makalu_comps =
      connected_components(CsrGraph::from_graph(makalu_survivors));
  const auto v04_comps =
      connected_components(CsrGraph::from_graph(v04_survivors));
  const double makalu_giant =
      static_cast<double>(makalu_comps.largest_size()) /
      static_cast<double>(makalu_survivors.node_count());
  const double v04_giant =
      static_cast<double>(v04_comps.largest_size()) /
      static_cast<double>(v04_survivors.node_count());
  EXPECT_GT(makalu_giant, 0.99);
  EXPECT_LT(v04_giant, 0.55);
  EXPECT_LT(makalu_comps.count, v04_comps.count / 10);
}

TEST_F(PaperClaims, SpectrumUnderFailureStaysExpanderLike) {
  // Figure 1: multiplicity of eigenvalue 0 stays 1 and the eigenvalue-1
  // mass stays small under 10% and 30% targeted failures. (Exact
  // multiplicity-1 counting needs symmetric structures; we bound the
  // *near-1* mass instead, which is what the plotted spectrum shows.)
  for (const double fraction : {0.1, 0.3}) {
    const auto result =
        spectrum_under_failure(makalu_analysis_config().graph, fraction);
    // Fully connected at 10%; at 30% tolerate at most one stray node that
    // lost every neighbor (the paper reports multiplicity 1 throughout;
    // at 3000 nodes a single straggler is within its plot resolution).
    const std::size_t allowed = fraction <= 0.1 ? 1u : 2u;
    EXPECT_LE(result.multiplicity_zero, allowed) << fraction;
    std::size_t near_one = 0;
    for (const double ev : result.spectrum) {
      near_one += (std::abs(ev - 1.0) < 1e-3);
    }
    EXPECT_LT(static_cast<double>(near_one) /
                  static_cast<double>(result.spectrum.size()),
              0.05)
        << fraction;
  }
}

TEST_F(PaperClaims, AbfSearchResolvesWithFewMessages) {
  // §4.6 / Figure 4 shape: at 1% replication most identifier queries
  // resolve within ~10 messages on Makalu.
  AbfExperimentOptions options;
  options.replication_ratio = 0.01;
  options.queries = 80;
  options.runs = 1;
  options.objects = 30;
  const auto rates = abf_success_vs_ttl(makalu(), options, 25);
  EXPECT_GT(rates[10], 0.85);
  EXPECT_GT(rates[25], 0.97);
}

TEST_F(PaperClaims, FloodingDuplicatesLowBeforeConvergenceBoundary) {
  // §4.3: in the expansion phase duplicates are a small share of
  // messages. At 3000 nodes a TTL-2 flood stays well inside the boundary.
  FloodExperimentOptions options;
  options.replication_ratio = 0.01;
  options.queries = 80;
  options.runs = 1;
  options.ttl = 2;
  const auto agg = run_flood_batch(makalu(), options);
  EXPECT_LT(agg.duplicate_fraction(), 0.12);
}

TEST_F(PaperClaims, MakaluDegreesAreBounded) {
  // Makalu needs no hubs: max degree stays at the capacity cap while the
  // power-law topology has hubs an order of magnitude above its mean.
  const auto makalu_stats =
      degree_stats(CsrGraph::from_graph(makalu().graph));
  const auto v04_stats =
      degree_stats(CsrGraph::from_graph(power_law().graph));
  EXPECT_LE(makalu_stats.max, 16u);
  EXPECT_GT(static_cast<double>(v04_stats.max), 10.0 * v04_stats.mean);
}

}  // namespace
}  // namespace makalu
