// Tests for graph/overlay serialization and a cross-validation suite
// tying the protocol layer's local rating to the graph-level engine.
#include <sstream>

#include <gtest/gtest.h>

#include "core/overlay_io.hpp"
#include "core/rating.hpp"
#include "graph/io.hpp"
#include "net/latency_model.hpp"
#include "proto/node.hpp"
#include "test_util.hpp"

namespace makalu {
namespace {

TEST(GraphIo, RoundTripSmallGraph) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  std::stringstream buffer;
  save_graph(buffer, g);
  const Graph loaded = load_graph(buffer);
  EXPECT_EQ(loaded.node_count(), 5u);
  EXPECT_EQ(loaded.edge_count(), 3u);
  EXPECT_TRUE(loaded.has_edge(0, 1));
  EXPECT_TRUE(loaded.has_edge(1, 2));
  EXPECT_TRUE(loaded.has_edge(3, 4));
  EXPECT_FALSE(loaded.has_edge(0, 4));
}

TEST(GraphIo, RoundTripBuiltOverlayGraph) {
  const EuclideanModel latency(400, 3);
  const MakaluOverlay overlay = OverlayBuilder().build(latency, 7);
  std::stringstream buffer;
  save_graph(buffer, overlay.graph);
  const Graph loaded = load_graph(buffer);
  EXPECT_EQ(loaded.node_count(), overlay.graph.node_count());
  EXPECT_EQ(loaded.edge_count(), overlay.graph.edge_count());
  EXPECT_EQ(loaded.degree_sequence(), overlay.graph.degree_sequence());
}

TEST(GraphIo, RejectsBadMagic) {
  std::stringstream buffer("not-a-graph\n3 0\n");
  EXPECT_THROW((void)load_graph(buffer), std::runtime_error);
}

TEST(GraphIo, RejectsTruncatedEdgeList) {
  std::stringstream buffer("makalu-graph v1\n4 3\n0 1\n1 2\n");
  EXPECT_THROW((void)load_graph(buffer), std::runtime_error);
}

TEST(GraphIo, RejectsOutOfRangeEndpoint) {
  std::stringstream buffer("makalu-graph v1\n3 1\n0 7\n");
  EXPECT_THROW((void)load_graph(buffer), std::runtime_error);
}

TEST(GraphIo, RejectsDuplicateEdge) {
  std::stringstream buffer("makalu-graph v1\n3 2\n0 1\n1 0\n");
  EXPECT_THROW((void)load_graph(buffer), std::runtime_error);
}

TEST(OverlayIo, RoundTripWithCapacities) {
  const EuclideanModel latency(300, 5);
  const MakaluOverlay overlay = OverlayBuilder().build(latency, 11);
  std::stringstream buffer;
  save_overlay(buffer, overlay);
  const MakaluOverlay loaded = load_overlay(buffer);
  EXPECT_EQ(loaded.graph.degree_sequence(),
            overlay.graph.degree_sequence());
  EXPECT_EQ(loaded.capacity, overlay.capacity);
}

TEST(OverlayIo, GraphMagicIsNotAnOverlay) {
  Graph g(2);
  g.add_edge(0, 1);
  std::stringstream buffer;
  save_graph(buffer, g);
  EXPECT_THROW((void)load_overlay(buffer), std::runtime_error);
}

TEST(OverlayIo, FileRoundTrip) {
  const EuclideanModel latency(100, 9);
  const MakaluOverlay overlay = OverlayBuilder().build(latency, 13);
  const std::string path = ::testing::TempDir() + "/makalu_overlay.txt";
  save_overlay_file(path, overlay);
  const MakaluOverlay loaded = load_overlay_file(path);
  EXPECT_EQ(loaded.capacity, overlay.capacity);
  EXPECT_EQ(loaded.graph.edge_count(), overlay.graph.edge_count());
}

TEST(OverlayIo, MissingFileThrows) {
  EXPECT_THROW((void)load_overlay_file("/nonexistent/overlay.txt"),
               std::runtime_error);
}

// --- overlay_io error paths (hand-built payloads around a valid one) -------

namespace overlay_payload {
// A well-formed v1 overlay: 3 nodes, 1 edge, 3 capacities.
constexpr const char* kValid = "makalu-overlay v1\n3 1\n0 1\ncapacities\n4 4 4\n";
}  // namespace overlay_payload

TEST(OverlayIo, ValidHandWrittenPayloadLoads) {
  std::stringstream buffer(overlay_payload::kValid);
  const MakaluOverlay overlay = load_overlay(buffer);
  EXPECT_EQ(overlay.graph.node_count(), 3u);
  EXPECT_TRUE(overlay.graph.has_edge(0, 1));
  EXPECT_EQ(overlay.capacity, (std::vector<std::size_t>{4, 4, 4}));
}

TEST(OverlayIo, RejectsCorruptHeader) {
  std::stringstream buffer(
      "makalu-overlay v9\n3 1\n0 1\ncapacities\n4 4 4\n");
  EXPECT_THROW((void)load_overlay(buffer), std::runtime_error);
}

TEST(OverlayIo, RejectsEmptyInput) {
  std::stringstream buffer("");
  EXPECT_THROW((void)load_overlay(buffer), std::runtime_error);
}

TEST(OverlayIo, RejectsEdgeEndpointOutOfRange) {
  std::stringstream buffer(
      "makalu-overlay v1\n3 1\n0 7\ncapacities\n4 4 4\n");
  EXPECT_THROW((void)load_overlay(buffer), std::runtime_error);
}

TEST(OverlayIo, RejectsTruncatedEdgeList) {
  std::stringstream buffer("makalu-overlay v1\n3 2\n0 1\n");
  EXPECT_THROW((void)load_overlay(buffer), std::runtime_error);
}

TEST(OverlayIo, RejectsMissingCapacitiesMarker) {
  std::stringstream buffer("makalu-overlay v1\n3 1\n0 1\n4 4 4\n");
  EXPECT_THROW((void)load_overlay(buffer), std::runtime_error);
}

TEST(OverlayIo, RejectsTruncatedCapacitiesBlock) {
  std::stringstream buffer("makalu-overlay v1\n3 1\n0 1\ncapacities\n4 4\n");
  EXPECT_THROW((void)load_overlay(buffer), std::runtime_error);
}

TEST(OverlayIo, RejectsFileTruncatedAtEveryPrefix) {
  // Chop a real serialized overlay at every prefix length up through the
  // capacities marker: all such prefixes are structurally incomplete and
  // must throw. (Cuts inside the numeric capacities block are excluded —
  // in a text format, truncating "12" to "1" yields a different but
  // well-formed number, which dedicated tests above cover via counts.)
  const EuclideanModel latency(12, 3);
  const MakaluOverlay overlay = OverlayBuilder().build(latency, 5);
  std::stringstream buffer;
  save_overlay(buffer, overlay);
  const std::string full = buffer.str();
  const std::size_t marker_end =
      full.find("capacities") + std::string("capacities").size();
  ASSERT_NE(full.find("capacities"), std::string::npos);
  for (std::size_t len = 0; len <= marker_end; ++len) {
    std::stringstream cut(full.substr(0, len));
    EXPECT_THROW((void)load_overlay(cut), std::runtime_error)
        << "prefix length " << len;
  }
}

// --- cross-validation: protocol-local rating == graph-level engine ---------

TEST(CrossValidation, ProtocolRatingMatchesEngineOnSyncedState) {
  // Build a small graph + latency world; give a ProtocolNode a fully
  // synced local view of node u, and compare scores to RatingEngine.
  const std::size_t n = 60;
  const EuclideanModel latency(n, 21);
  Graph g(n);
  Rng rng(3);
  for (NodeId v = 0; v < n; ++v) g.add_edge(v, (v + 1) % n);
  for (int i = 0; i < 120; ++i) {
    g.add_edge(static_cast<NodeId>(rng.uniform_below(n)),
               static_cast<NodeId>(rng.uniform_below(n)));
  }

  RatingEngine engine(g, latency);
  for (const NodeId u : {NodeId{0}, NodeId{17}, NodeId{42}}) {
    proto::ProtocolNode node(u, 99, RatingWeights{});
    for (const NodeId w : g.neighbors(u)) {
      const auto nbrs = g.neighbors(w);
      node.add_neighbor(w, latency.latency(u, w),
                        std::vector<NodeId>(nbrs.begin(), nbrs.end()));
    }
    const auto local = node.rate_locally();
    const auto global = engine.rate_neighbors(u);
    ASSERT_EQ(local.size(), global.size());
    for (const auto& lr : local) {
      const auto it = std::find_if(
          global.begin(), global.end(),
          [&](const NeighborRating& r) { return r.neighbor == lr.peer; });
      ASSERT_NE(it, global.end());
      EXPECT_NEAR(lr.score, it->score, 1e-9)
          << "node " << u << " neighbor " << lr.peer;
    }
    // And the eviction decision agrees (modulo exact ties).
    EXPECT_EQ(node.worst_neighbor(0), engine.worst_neighbor(u));
  }
}

}  // namespace
}  // namespace makalu
