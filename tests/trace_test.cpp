// Tests for the Gnutella traffic profiles and synthetic trace machinery.
#include <gtest/gtest.h>

#include "graph/graph.hpp"
#include "test_util.hpp"
#include "trace/gnutella_traffic.hpp"
#include "trace/synthetic_trace.hpp"

namespace makalu {
namespace {

TEST(TrafficProfile, Gnutella2006MatchesPaperArithmetic) {
  const auto p = gnutella_traffic_2006();
  // Table 2's Gnutella column: 38.439 msgs/query at 3.23 q/s, 106 B.
  EXPECT_NEAR(p.outgoing_messages_per_second(), 124.16, 0.1);
  EXPECT_NEAR(p.outgoing_kbps(), 105.3, 3.0);
  // The trace-measured value the paper quotes is 103.4 kbps — our
  // computation from rate x fanout x size must land within a few percent.
  EXPECT_NEAR(p.outgoing_kbps(), p.measured_outgoing_kbps, 5.0);
  EXPECT_DOUBLE_EQ(p.observed_success_rate, 0.069);
}

TEST(TrafficProfile, Gnutella2003Shape) {
  const auto p03 = gnutella_traffic_2003();
  const auto p06 = gnutella_traffic_2006();
  // 2003: many more queries, tiny fanout; 2006: few queries, huge fanout.
  EXPECT_GT(p03.queries_per_second, 10.0 * p06.queries_per_second);
  EXPECT_LT(p03.forward_fanout, p06.forward_fanout / 5.0);
  // Net effect: outgoing bandwidth of the same order (the paper's point —
  // v0.6 did not reduce bandwidth).
  EXPECT_NEAR(p03.outgoing_kbps() / p06.outgoing_kbps(), 2.0, 1.0);
}

TEST(TrafficProfile, MakaluDerivation) {
  const auto base = gnutella_traffic_2006();
  const auto makalu = makalu_profile_from(base, 8.5, 0.36, 9.5);
  EXPECT_NEAR(makalu.outgoing_messages_per_second(), 27.45, 0.1);
  EXPECT_NEAR(makalu.outgoing_kbps(), 23.3, 0.5);
  EXPECT_DOUBLE_EQ(makalu.observed_success_rate, 0.36);
}

TEST(SyntheticTrace, ArrivalRateMatchesProfile) {
  auto profile = gnutella_traffic_2006();
  SyntheticTraceOptions options;
  options.duration_seconds = 600.0;
  options.node_count = 100;
  const auto trace = generate_trace(profile, options, 42);
  // Poisson(3.23/s * 600s) ≈ 1938 ± ~44.
  EXPECT_NEAR(static_cast<double>(trace.size()), 1938.0, 200.0);
  // Timestamps strictly increasing and within the horizon.
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GT(trace[i].time_ms, trace[i - 1].time_ms);
  }
  EXPECT_LT(trace.back().time_ms, 600'000.0);
}

TEST(SyntheticTrace, SourcesAndObjectsInRange) {
  auto profile = gnutella_traffic_2003();
  SyntheticTraceOptions options;
  options.duration_seconds = 10.0;
  options.node_count = 64;
  options.object_count = 16;
  const auto trace = generate_trace(profile, options, 7);
  ASSERT_GT(trace.size(), 100u);
  for (const auto& q : trace) {
    EXPECT_LT(q.source, 64u);
    EXPECT_LT(q.object, 16u);
    EXPECT_GE(q.size_bytes, 40u);
  }
}

TEST(SyntheticTrace, ZipfPopularitySkew) {
  auto profile = gnutella_traffic_2003();
  SyntheticTraceOptions options;
  options.duration_seconds = 300.0;
  options.node_count = 10;
  options.object_count = 50;
  options.zipf_exponent = 1.0;
  const auto trace = generate_trace(profile, options, 11);
  std::vector<int> counts(50, 0);
  for (const auto& q : trace) ++counts[q.object];
  EXPECT_GT(counts[0], 3 * counts[20]);
}

TEST(SyntheticTrace, Deterministic) {
  auto profile = gnutella_traffic_2006();
  SyntheticTraceOptions options;
  options.duration_seconds = 30.0;
  options.node_count = 20;
  const auto a = generate_trace(profile, options, 5);
  const auto b = generate_trace(profile, options, 5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].time_ms, b[i].time_ms);
    EXPECT_EQ(a[i].object, b[i].object);
    EXPECT_EQ(a[i].source, b[i].source);
  }
}

TEST(TraceReplay, AccountingConsistency) {
  const Graph g = testing::make_cycle(40);
  const CsrGraph csr = CsrGraph::from_graph(g);
  const ObjectCatalog catalog(40, 8, 0.1, 3);
  auto profile = gnutella_traffic_2006();
  SyntheticTraceOptions options;
  options.duration_seconds = 20.0;
  options.node_count = 40;
  options.object_count = 8;
  const auto trace = generate_trace(profile, options, 13);
  ASSERT_FALSE(trace.empty());
  const auto report = replay_flood_trace(csr, catalog, trace, 5);
  EXPECT_EQ(report.aggregate.queries(), trace.size());
  // Per-node outgoing totals equal total messages.
  EXPECT_NEAR(report.per_node_outgoing.sum(),
              report.aggregate.mean_messages() *
                  static_cast<double>(trace.size()),
              1e-6);
  EXPECT_GT(report.duration_seconds, 0.0);
  EXPECT_GT(report.mean_query_bytes, 40.0);
  EXPECT_GT(report.total_outgoing_kbps(), 0.0);
  // 10% replication on a TTL-5 cycle flood: some queries succeed.
  EXPECT_GT(report.aggregate.success_rate(), 0.2);
}

TEST(TraceReplay, EmptyTraceIsSafe) {
  const Graph g = testing::make_cycle(10);
  const CsrGraph csr = CsrGraph::from_graph(g);
  const ObjectCatalog catalog(10, 1, 0.1, 1);
  const auto report = replay_flood_trace(csr, catalog, {}, 4);
  EXPECT_EQ(report.aggregate.queries(), 0u);
}

}  // namespace
}  // namespace makalu
