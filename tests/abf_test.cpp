// Tests for attenuated-Bloom-filter routing: advertisement construction
// (level contents on hand-built graphs), no-false-negative routing within
// the filter horizon, and scaling properties.
#include <gtest/gtest.h>

#include "search/abf_search.hpp"
#include "test_util.hpp"

namespace makalu {
namespace {

ObjectCatalog catalog_on(std::size_t n, NodeId holder) {
  for (std::uint64_t seed = 0; seed < 40'000; ++seed) {
    ObjectCatalog catalog(n, 1, 1.0 / static_cast<double>(n), seed);
    if (catalog.holders(0).front() == holder) return catalog;
  }
  ADD_FAILURE() << "could not place object";
  return ObjectCatalog(n, 1, 1.0, 0);
}

TEST(AbfRouter, AdvertisementLevelsReflectHopDistance) {
  // Path 0-1-2-3, object on node 3, depth 3.
  const Graph g = testing::make_path(4);
  const CsrGraph csr = CsrGraph::from_graph(g);
  const auto catalog = catalog_on(4, 3);
  const std::uint64_t key = ObjectCatalog::object_key(0);
  AbfOptions options;
  options.depth = 3;
  AbfRouter router(csr, catalog, options);
  // Node 2's advertisement for neighbor 3 (index of 3 in 2's sorted row
  // {1,3} is 1): level 0 contains the object.
  EXPECT_TRUE(router.advertisement(2, 1).level(0).maybe_contains(key));
  // Node 1's advertisement for neighbor 2 (row {0,2}, index 1): level 1.
  const auto& adv12 = router.advertisement(1, 1);
  EXPECT_FALSE(adv12.level(0).maybe_contains(key));
  EXPECT_TRUE(adv12.level(1).maybe_contains(key));
  // Node 0's advertisement for neighbor 1 (row {1}, index 0): level 2.
  const auto& adv01 = router.advertisement(0, 0);
  EXPECT_FALSE(adv01.level(0).maybe_contains(key));
  EXPECT_FALSE(adv01.level(1).maybe_contains(key));
  EXPECT_TRUE(adv01.level(2).maybe_contains(key));
  // Advertisements never aggregate content *behind* the receiver: node
  // 3's advertisement to 2 about the far side contains nothing of node 0.
}

TEST(AbfRouter, NoFalseNegativeWithinHorizon) {
  // Object 3 hops from source with depth 3: filters must see it and the
  // greedy route must find it in exactly 3 messages.
  const Graph g = testing::make_path(6);
  const CsrGraph csr = CsrGraph::from_graph(g);
  const auto catalog = catalog_on(6, 3);
  AbfRouter router(csr, catalog, AbfOptions{});
  Rng rng(1);
  const auto r = router.route(0, 0, 25, rng);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.messages, 3u);
  EXPECT_EQ(r.first_hit_hop, 3u);
}

TEST(AbfRouter, RoutesToObjectBeyondHorizonViaExploration) {
  // Object 5 hops away, depth 3: the first hops are blind (random
  // fallback), but on a path there is only one way forward.
  const Graph g = testing::make_path(8);
  const CsrGraph csr = CsrGraph::from_graph(g);
  const auto catalog = catalog_on(8, 6);
  AbfRouter router(csr, catalog, AbfOptions{});
  Rng rng(2);
  const auto r = router.route(0, 0, 40, rng);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.messages, 6u);
}

TEST(AbfRouter, TtlExhaustionFails) {
  const Graph g = testing::make_path(8);
  const CsrGraph csr = CsrGraph::from_graph(g);
  const auto catalog = catalog_on(8, 7);
  AbfRouter router(csr, catalog, AbfOptions{});
  Rng rng(3);
  const auto r = router.route(0, 0, 3, rng);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.messages, 3u);
}

TEST(AbfRouter, SourceHoldingObjectCostsNothing) {
  const Graph g = testing::make_cycle(6);
  const CsrGraph csr = CsrGraph::from_graph(g);
  const auto catalog = catalog_on(6, 2);
  AbfRouter router(csr, catalog, AbfOptions{});
  Rng rng(4);
  const auto r = router.route(2, 0, 10, rng);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.messages, 0u);
  EXPECT_EQ(r.first_hit_hop, 0u);
}

TEST(AbfRouter, BacktracksOutOfDeadEnd) {
  // Spider: source 0 center; arm A = 1-2 (dead end), arm B = 3-4-5 with
  // object at 5 beyond depth... use depth 1 so the router can be lured.
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  const CsrGraph csr = CsrGraph::from_graph(g);
  const auto catalog = catalog_on(6, 5);
  AbfOptions options;
  options.depth = 1;  // filters only see direct neighbors' content
  AbfRouter router(csr, catalog, options);
  Rng rng(5);
  const auto r = router.route(0, 0, 30, rng);
  EXPECT_TRUE(r.success);  // must escape arm A if it wandered in
  EXPECT_GE(r.messages, 3u);
}

TEST(AbfRouter, GreedyBeatsBlindOnBranchingTopology) {
  // Star of chains: center 0, four chains of length 3. With depth 3 the
  // center's filters pinpoint the right chain; first forward must enter
  // the correct arm.
  Graph g(13);
  NodeId next = 1;
  std::vector<NodeId> chain_tips;
  for (int arm = 0; arm < 4; ++arm) {
    g.add_edge(0, next);
    g.add_edge(next, next + 1);
    g.add_edge(next + 1, next + 2);
    chain_tips.push_back(next + 2);
    next += 3;
  }
  const CsrGraph csr = CsrGraph::from_graph(g);
  const auto catalog = catalog_on(13, chain_tips[2]);
  AbfRouter router(csr, catalog, AbfOptions{});
  Rng rng(6);
  const auto r = router.route(0, 0, 25, rng);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.messages, 3u);  // straight down the correct arm
}

TEST(AbfRouter, TableBytesMatchesStructure) {
  const Graph g = testing::make_cycle(10);  // 10 edges → 20 arcs
  const CsrGraph csr = CsrGraph::from_graph(g);
  const ObjectCatalog catalog(10, 2, 0.1, 3);
  AbfOptions options;
  options.depth = 3;
  options.level_params = {1024, 4};
  AbfRouter router(csr, catalog, options);
  EXPECT_EQ(router.table_bytes(), 20u * 3u * 128u);
  EXPECT_EQ(router.depth(), 3u);
}

TEST(AbfRouter, DeeperFiltersImproveSuccessAtLowTtl) {
  // Random-ish ring-with-chords graph, object placed a few hops out;
  // depth-3 routing should beat depth-1 at a tight TTL on average.
  Graph g = testing::make_cycle(60);
  Rng wiring(9);
  for (int i = 0; i < 30; ++i) {
    g.add_edge(static_cast<NodeId>(wiring.uniform_below(60)),
               static_cast<NodeId>(wiring.uniform_below(60)));
  }
  const CsrGraph csr = CsrGraph::from_graph(g);
  int wins_deep = 0;
  int wins_shallow = 0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const ObjectCatalog catalog(60, 1, 1.0 / 60.0, seed);
    AbfOptions deep;
    deep.depth = 3;
    AbfOptions shallow;
    shallow.depth = 1;
    AbfRouter router_deep(csr, catalog, deep);
    AbfRouter router_shallow(csr, catalog, shallow);
    Rng rng_a(seed);
    Rng rng_b(seed);
    wins_deep += router_deep.route(0, 0, 8, rng_a).success;
    wins_shallow += router_shallow.route(0, 0, 8, rng_b).success;
  }
  EXPECT_GE(wins_deep, wins_shallow);
}

TEST(AbfRouter, VisitedNodesNeverExceedMessagesPlusOne) {
  const Graph g = testing::make_cycle(30);
  const CsrGraph csr = CsrGraph::from_graph(g);
  const ObjectCatalog catalog(30, 3, 0.05, 17);
  AbfRouter router(csr, catalog, AbfOptions{});
  Rng rng(8);
  for (ObjectId obj = 0; obj < 3; ++obj) {
    const auto r = router.route(11, obj, 20, rng);
    EXPECT_LE(r.nodes_visited, r.messages + 1);
  }
}

}  // namespace
}  // namespace makalu
