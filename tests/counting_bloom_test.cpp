// Tests for the counting Bloom filter (deletion-capable content index).
#include <gtest/gtest.h>

#include "bloom/counting_bloom_filter.hpp"
#include "support/rng.hpp"

namespace makalu {
namespace {

TEST(CountingBloom, InsertThenContains) {
  CountingBloomFilter filter({1024, 4});
  filter.insert(42);
  EXPECT_TRUE(filter.maybe_contains(42));
  EXPECT_FALSE(filter.maybe_contains(43));
}

TEST(CountingBloom, RemoveErasesSingleton) {
  CountingBloomFilter filter({1024, 4});
  filter.insert(42);
  filter.remove(42);
  EXPECT_FALSE(filter.maybe_contains(42));
  EXPECT_EQ(filter.nonzero_count(), 0u);
}

TEST(CountingBloom, RemoveKeepsOtherKeys) {
  CountingBloomFilter filter({4096, 4});
  Rng rng(1);
  std::vector<std::uint64_t> keep;
  std::vector<std::uint64_t> drop;
  for (int i = 0; i < 100; ++i) keep.push_back(rng());
  for (int i = 0; i < 100; ++i) drop.push_back(rng());
  for (const auto k : keep) filter.insert(k);
  for (const auto k : drop) filter.insert(k);
  for (const auto k : drop) filter.remove(k);
  for (const auto k : keep) {
    EXPECT_TRUE(filter.maybe_contains(k));  // counting preserves these
  }
}

TEST(CountingBloom, DoubleInsertNeedsDoubleRemove) {
  CountingBloomFilter filter({1024, 4});
  filter.insert(7);
  filter.insert(7);
  filter.remove(7);
  EXPECT_TRUE(filter.maybe_contains(7));
  filter.remove(7);
  EXPECT_FALSE(filter.maybe_contains(7));
}

TEST(CountingBloom, SaturatedCountersAreNeverDecremented) {
  CountingBloomFilter filter({64, 1});
  // Saturate a slot: insert one key far beyond the cap.
  for (int i = 0; i < 100; ++i) filter.insert(5);
  EXPECT_GT(filter.saturated_count(), 0u);
  // Removing the key the same number of times must NOT clear the slot.
  for (int i = 0; i < 100; ++i) filter.remove(5);
  EXPECT_TRUE(filter.maybe_contains(5));
  EXPECT_GT(filter.saturated_count(), 0u);
}

TEST(CountingBloom, SnapshotMatchesBloomSemantics) {
  CountingBloomFilter counting({2048, 4});
  BloomFilter plain({2048, 4});
  Rng rng(2);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 300; ++i) {
    const auto k = rng();
    keys.push_back(k);
    counting.insert(k);
    plain.insert(k);
  }
  const BloomFilter snapshot = counting.to_bloom_filter();
  // Probe-layout compatibility: the snapshot answers exactly like a plain
  // filter built from the same keys.
  ASSERT_TRUE(snapshot.parameters_match(plain));
  for (const auto k : keys) EXPECT_TRUE(snapshot.maybe_contains(k));
  Rng probes(3);
  for (int i = 0; i < 5000; ++i) {
    const auto k = probes();
    EXPECT_EQ(snapshot.maybe_contains(k), plain.maybe_contains(k));
  }
}

TEST(CountingBloom, SnapshotReflectsRemovals) {
  CountingBloomFilter counting({2048, 4});
  counting.insert(1);
  counting.insert(2);
  counting.remove(1);
  const BloomFilter snapshot = counting.to_bloom_filter();
  EXPECT_FALSE(snapshot.maybe_contains(1));
  EXPECT_TRUE(snapshot.maybe_contains(2));
}

TEST(CountingBloom, ClearResets) {
  CountingBloomFilter filter({512, 3});
  filter.insert(9);
  filter.clear();
  EXPECT_FALSE(filter.maybe_contains(9));
  EXPECT_EQ(filter.nonzero_count(), 0u);
  EXPECT_EQ(filter.saturated_count(), 0u);
}

class CountingBloomProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(CountingBloomProperty, InsertRemoveRoundTripNoResidue) {
  const auto [bits, hashes] = GetParam();
  CountingBloomFilter filter({bits, hashes});
  Rng rng(11);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 50; ++i) keys.push_back(rng());
  for (const auto k : keys) filter.insert(k);
  for (const auto k : keys) filter.remove(k);
  // As long as no counter saturated, a full round trip leaves nothing.
  if (filter.saturated_count() == 0) {
    EXPECT_EQ(filter.nonzero_count(), 0u);
    for (const auto k : keys) EXPECT_FALSE(filter.maybe_contains(k));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CountingBloomProperty,
    ::testing::Combine(::testing::Values(512, 2048, 8192),
                       ::testing::Values(2, 4, 6)));

}  // namespace
}  // namespace makalu
