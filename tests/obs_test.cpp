// Tests for the observability subsystem: the sharded metrics registry
// (kinds, idempotent registration, histogram bucket semantics,
// thread-count-invariant aggregation), the JSON writer/report contract,
// and — most importantly — the zero-interference guarantee: attaching a
// registry to the parallel query driver or the deterministic sweep must
// never change what the instrumented code computes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/parallel_query_driver.hpp"
#include "net/latency_model.hpp"
#include "core/overlay_builder.hpp"
#include "core/rating_cache.hpp"
#include "obs/bench_report.hpp"
#include "obs/json_writer.hpp"
#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "proto/network.hpp"
#include "search/flood_search.hpp"
#include "support/thread_pool.hpp"
#include "test_util.hpp"

namespace makalu {
namespace {

using obs::GaugeAgg;
using obs::HistogramSpec;
using obs::HistogramView;
using obs::JsonWriter;
using obs::MetricId;
using obs::MetricKind;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using testing::make_cycle;

// Sorted adjacency lists: equal iff the graphs have identical edge sets.
std::vector<std::vector<NodeId>> canonical(const Graph& g) {
  std::vector<std::vector<NodeId>> adj(g.node_count());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const auto nbrs = g.neighbors(u);
    adj[u].assign(nbrs.begin(), nbrs.end());
    std::sort(adj[u].begin(), adj[u].end());
  }
  return adj;
}

TEST(ObsRegistry, CountersGaugesAndHistogramsAggregate) {
  MetricsRegistry registry(2);
  const MetricId hits = registry.counter("hits");
  const MetricId load = registry.gauge("load");
  const MetricId peak = registry.gauge("peak", GaugeAgg::kMax);
  const MetricId hops = registry.histogram("hops",
                                           HistogramSpec::linear(1.0, 1.0, 3));

  registry.shard(0).add(hits, 2);
  registry.shard(1).add(hits);
  registry.shard(0).gauge_add(load, 1.5);
  registry.shard(1).gauge_add(load, 2.5);
  registry.shard(0).gauge_max(peak, 7.0);
  registry.shard(1).gauge_max(peak, 3.0);
  registry.shard(0).observe(hops, 2.0);
  registry.shard(1).observe(hops, 99.0);  // overflow bucket

  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.metrics.size(), 4u);

  const auto* h = snap.find("hits");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->kind, MetricKind::kCounter);
  EXPECT_EQ(h->count, 3u);

  const auto* l = snap.find("load");
  ASSERT_NE(l, nullptr);
  EXPECT_DOUBLE_EQ(l->value, 4.0);  // sum across shards

  const auto* p = snap.find("peak");
  ASSERT_NE(p, nullptr);
  EXPECT_DOUBLE_EQ(p->value, 7.0);  // max across shards

  const auto* hist = snap.find("hops");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->kind, MetricKind::kHistogram);
  EXPECT_EQ(hist->count, 2u);
  ASSERT_EQ(hist->buckets.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(hist->buckets[1], 1u);      // 2.0 lands in le=2
  EXPECT_EQ(hist->buckets[3], 1u);      // 99.0 overflows

  EXPECT_EQ(snap.find("missing"), nullptr);
}

TEST(ObsRegistry, RegistrationIsIdempotent) {
  MetricsRegistry registry;
  const MetricId a = registry.counter("c");
  const MetricId b = registry.counter("c");
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.metric_count(), 1u);
  const MetricId g1 = registry.gauge("g");
  const MetricId g2 = registry.gauge("g");
  EXPECT_EQ(g1, g2);
  // Distinct names get distinct ids even across kinds.
  EXPECT_EQ(registry.metric_count(), 2u);
}

TEST(ObsRegistry, HistogramBucketBoundariesAreLessOrEqual) {
  MetricsRegistry registry;
  // Bounds 1, 2, 4, 8 plus the implicit +inf bucket.
  const MetricId id =
      registry.histogram("h", HistogramSpec::exponential(1.0, 2.0, 4));
  auto& shard = registry.shard(0);
  shard.observe(id, 1.0);   // on the first bound: le semantics -> bucket 0
  shard.observe(id, 1.5);   // bucket 1 (le=2)
  shard.observe(id, 2.0);   // bucket 1, exactly on the bound
  shard.observe(id, 8.0);   // bucket 3, exactly on the last bound
  shard.observe(id, 8.01);  // overflow
  shard.observe(id, 3.0, 5);  // weighted: 5 observations in bucket 2

  const MetricsSnapshot snap = registry.snapshot();
  const auto* h = snap.find("h");
  ASSERT_NE(h, nullptr);
  ASSERT_EQ(h->buckets.size(), 5u);
  EXPECT_EQ(h->buckets[0], 1u);
  EXPECT_EQ(h->buckets[1], 2u);
  EXPECT_EQ(h->buckets[2], 5u);
  EXPECT_EQ(h->buckets[3], 1u);
  EXPECT_EQ(h->buckets[4], 1u);
  EXPECT_EQ(h->count, 10u);
  EXPECT_DOUBLE_EQ(h->value, 1.0 + 1.5 + 2.0 + 8.0 + 8.01 + 5 * 3.0);
}

TEST(ObsRegistry, ResetClearsValuesButKeepsRegistrations) {
  MetricsRegistry registry;
  const MetricId c = registry.counter("c");
  registry.shard(0).add(c, 41);
  registry.reset();
  EXPECT_EQ(registry.metric_count(), 1u);
  EXPECT_EQ(registry.snapshot().find("c")->count, 0u);
  registry.shard(0).add(c);  // the id survives the reset
  EXPECT_EQ(registry.snapshot().find("c")->count, 1u);
}

TEST(ObsRegistry, EnsureSlotsGrowsAndKeepsExistingShards) {
  MetricsRegistry registry(1);
  const MetricId c = registry.counter("c");
  registry.shard(0).add(c, 5);
  registry.ensure_slots(4);
  EXPECT_EQ(registry.slots(), 4u);
  registry.shard(3).add(c, 2);
  EXPECT_EQ(registry.snapshot().find("c")->count, 7u);
  // Shrinking never happens.
  registry.ensure_slots(2);
  EXPECT_EQ(registry.slots(), 4u);
}

// The determinism claim, tested directly: the same observations produce
// the same snapshot regardless of which shard recorded them. Integer
// counter/bucket sums make this exact, not approximate.
TEST(ObsRegistry, SnapshotIndependentOfShardAssignment) {
  const auto run = [](std::size_t shards) {
    MetricsRegistry registry(shards);
    const MetricId c = registry.counter("msgs");
    const MetricId h =
        registry.histogram("hops", HistogramSpec::linear(1.0, 1.0, 8));
    for (std::uint64_t i = 0; i < 1000; ++i) {
      auto& shard = registry.shard(i % shards);
      shard.add(c, i % 7);
      shard.observe(h, static_cast<double>(i % 10), 1 + i % 3);
    }
    std::ostringstream json;
    registry.snapshot().write_json(json);
    return json.str();
  };
  const std::string one = run(1);
  EXPECT_EQ(one, run(2));
  EXPECT_EQ(one, run(8));
}

// TSan target: concurrent slot-local writes followed by a post-join
// snapshot. With one shard per slot there is no cross-thread write, and
// the fold must still be thread-count-invariant for integer sums.
TEST(ObsRegistry, ParallelSlotWritesFoldDeterministically) {
  const std::size_t kItems = 4000;
  const auto run = [&](std::size_t threads) {
    ThreadPool pool(threads);
    MetricsRegistry registry;
    registry.ensure_slots(pool.max_slots());
    const MetricId c = registry.counter("items");
    const MetricId h =
        registry.histogram("value", HistogramSpec::linear(0.0, 100.0, 10));
    pool.parallel_for_slotted(0, kItems, [&](std::size_t slot, std::size_t lo,
                                             std::size_t hi) {
      auto& shard = registry.shard(slot);
      for (std::size_t i = lo; i < hi; ++i) {
        shard.add(c);
        shard.observe(h, static_cast<double>(i % 1000));
      }
    });
    std::ostringstream json;
    registry.snapshot().write_json(json);
    return json.str();
  };
  const std::string one = run(1);
  EXPECT_EQ(one, run(2));
  EXPECT_EQ(one, run(8));
}

TEST(ObsJson, WriterEscapesAndNests) {
  std::ostringstream os;
  JsonWriter json(os);
  json.begin_object();
  json.key("s").value("a\"b\\c\nd");
  json.key("i").value(std::int64_t{-3});
  json.key("u").value(std::uint64_t{7});
  json.key("d").value(0.5);
  json.key("b").value(true);
  json.key("z").null();
  json.key("arr").begin_array();
  json.value(std::uint64_t{1}).value(std::uint64_t{2});
  json.end_array();
  json.end_object();
  EXPECT_EQ(os.str(),
            "{\"s\":\"a\\\"b\\\\c\\nd\",\"i\":-3,\"u\":7,\"d\":0.5,"
            "\"b\":true,\"z\":null,\"arr\":[1,2]}");
}

TEST(ObsJson, SnapshotSerializationGolden) {
  MetricsRegistry registry;
  registry.shard(0).add(registry.counter("b.count"), 3);
  registry.shard(0).gauge_set(registry.gauge("a.value"), 2.5);
  const MetricId h =
      registry.histogram("c.hist", HistogramSpec::linear(1.0, 1.0, 2));
  registry.shard(0).observe(h, 1.0);
  registry.shard(0).observe(h, 5.0);
  std::ostringstream os;
  registry.snapshot().write_json(os);
  // Name-sorted members, bit-stable number formatting: the byte-for-byte
  // contract bench_compare.py and the golden artifacts rely on.
  EXPECT_EQ(os.str(),
            "{\"a.value\":{\"kind\":\"gauge\",\"agg\":\"sum\",\"value\":2.5},"
            "\"b.count\":{\"kind\":\"counter\",\"value\":3},"
            "\"c.hist\":{\"kind\":\"histogram\",\"count\":2,\"sum\":6,"
            "\"buckets\":[{\"le\":1,\"count\":1},{\"le\":2,\"count\":0},"
            "{\"le\":\"+inf\",\"count\":1}]}}");
}

TEST(ObsBenchReport, DocumentCarriesRunMetadata) {
  obs::BenchRunInfo info;
  info.bench = "unit_test";
  info.git = "deadbeef";
  info.n = 100;
  info.runs = 2;
  info.queries = 10;
  info.seed = 42;
  info.threads = 4;
  info.paper = false;
  obs::BenchReport report(info);
  report.add_phase("build", 12.5);
  report.add_phase("query", 3.25);

  MetricsRegistry registry;
  registry.shard(0).add(registry.counter("x"), 1);

  std::ostringstream os;
  report.write_json(os, registry.snapshot());
  const std::string doc = os.str();
  EXPECT_NE(doc.find("\"schema\":\"makalu.bench.v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"bench\":\"unit_test\""), std::string::npos);
  EXPECT_NE(doc.find("\"git\":\"deadbeef\""), std::string::npos);
  EXPECT_NE(doc.find("\"n\":100"), std::string::npos);
  EXPECT_NE(doc.find("\"seed\":42"), std::string::npos);
  EXPECT_NE(doc.find("\"threads\":4"), std::string::npos);
  EXPECT_NE(doc.find("\"paper\":false"), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"build\",\"ms\":12.5"), std::string::npos);
  EXPECT_NE(doc.find("\"wall_ms\":"), std::string::npos);
  EXPECT_NE(doc.find("\"metrics\":{\"x\":"), std::string::npos);
}

TEST(ObsScopedTimer, RecordsIntoShardAndNullDisarms) {
  MetricsRegistry registry;
  const MetricId ms = registry.gauge("t.ms");
  {
    obs::ScopedTimer timer(&registry.shard(0), ms);
  }
  const MetricsSnapshot snap = registry.snapshot();
  const auto* t = snap.find("t.ms");
  ASSERT_NE(t, nullptr);
  EXPECT_GE(t->value, 0.0);

  {
    obs::ScopedTimer disarmed(nullptr, ms);  // must be a no-op
  }
  SUCCEED();
}

// --- zero-interference: the whole point of the nullable-pointer seam ----

TEST(ObsInterference, DriverResultsIdenticalWithAndWithoutMetrics) {
  const std::size_t n = 200;
  const CsrGraph csr = CsrGraph::from_graph(make_cycle(n));
  const ObjectCatalog catalog(n, 8, 0.05, 3);
  FloodOptions fopts;
  fopts.ttl = 8;
  const FloodEngine engine(csr, fopts);

  BatchQueryOptions plain;
  plain.queries = 100;
  plain.seed = 11;
  const QueryAggregate without =
      ParallelQueryDriver(2).run_batch(engine, catalog, plain);

  MetricsRegistry registry;
  BatchQueryOptions instrumented = plain;
  instrumented.metrics = &registry;
  const QueryAggregate with =
      ParallelQueryDriver(2).run_batch(engine, catalog, instrumented);

  EXPECT_EQ(without.queries(), with.queries());
  EXPECT_EQ(without.success_rate(), with.success_rate());
  EXPECT_EQ(without.mean_messages(), with.mean_messages());
  EXPECT_EQ(without.mean_duplicates(), with.mean_duplicates());
  EXPECT_EQ(without.mean_nodes_visited(), with.mean_nodes_visited());

  // And the registry actually observed the batch.
  const MetricsSnapshot snap = registry.snapshot();
  const auto* queries = snap.find("driver.queries");
  ASSERT_NE(queries, nullptr);
  EXPECT_EQ(queries->count, plain.queries);
  const auto* messages = snap.find("driver.messages");
  ASSERT_NE(messages, nullptr);
  EXPECT_GT(messages->count, 0u);
}

TEST(ObsInterference, DriverCountersIdenticalAcrossThreadCounts) {
  const std::size_t n = 150;
  const CsrGraph csr = CsrGraph::from_graph(make_cycle(n));
  const ObjectCatalog catalog(n, 6, 0.05, 5);
  const FloodEngine engine(csr);

  const auto counters_at = [&](std::size_t threads) {
    MetricsRegistry registry;
    BatchQueryOptions batch;
    batch.queries = 80;
    batch.seed = 17;
    batch.metrics = &registry;
    ParallelQueryDriver(threads).run_batch(engine, catalog, batch);
    // Wall-clock histograms are the one intentionally nondeterministic
    // metric family; strip them and compare everything else exactly.
    std::vector<std::pair<std::string, std::uint64_t>> out;
    for (const auto& m : registry.snapshot().metrics) {
      if (m.name == "driver.query_wall_us") continue;
      out.emplace_back(m.name, m.count);
    }
    return out;
  };
  const auto serial = counters_at(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, counters_at(2));
  EXPECT_EQ(serial, counters_at(8));
}

TEST(ObsInterference, SweepResultIdenticalWithAndWithoutMetrics) {
  const EuclideanModel latency(200, 23);
  const OverlayBuilder builder;
  const MakaluOverlay base = builder.build(latency, 7);
  std::vector<bool> active(base.node_count(), true);
  Rng damage_rng(31);
  MakaluOverlay damaged = base;
  for (NodeId v = 0; v < damaged.node_count(); ++v) {
    if (damage_rng.chance(0.2)) damaged.graph.isolate(v);
  }

  const auto sweep_with = [&](MetricsRegistry* metrics) {
    MakaluOverlay overlay = damaged;
    CachedRatingEngine cache(overlay.graph, latency,
                             builder.parameters().weights);
    SweepOptions sweep;
    sweep.seed = 0xfeedULL;
    sweep.active = &active;
    sweep.metrics = metrics;
    const std::size_t changes =
        builder.deterministic_sweep(overlay, cache, sweep);
    return std::make_pair(canonical(overlay.graph), changes);
  };

  const auto plain = sweep_with(nullptr);
  MetricsRegistry registry;
  const auto instrumented = sweep_with(&registry);
  EXPECT_EQ(plain.first, instrumented.first);
  EXPECT_EQ(plain.second, instrumented.second);

  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.find("sweep.sweeps")->count, 1u);
  EXPECT_GT(snap.find("sweep.solicitors")->count, 0u);
  EXPECT_EQ(snap.find("sweep.edges_added")->count +
                snap.find("sweep.edges_removed")->count,
            static_cast<std::uint64_t>(instrumented.second));
  EXPECT_GE(snap.find("sweep.plan_ms")->value, 0.0);
}

TEST(ObsTraffic, ExportPublishesTotalsPerTypeAndReliability) {
  proto::TrafficStats stats;
  // One Query (index of Query in the payload alternatives) and one drop —
  // record() is exercised end-to-end by proto_test; here the export
  // mapping itself is under test, so fill the fields directly.
  stats.count[7] = 4;   // "query"
  stats.bytes[7] = 160;
  stats.total_messages = 4;
  stats.total_bytes = 160;
  stats.dropped_messages = 2;
  stats.dropped_bytes = 80;
  stats.retransmissions = 3;

  MetricsRegistry registry;
  proto::export_traffic_metrics(stats, registry);
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.find("proto.messages")->count, 4u);
  EXPECT_EQ(snap.find("proto.bytes")->count, 160u);
  ASSERT_NE(snap.find("proto.messages.query"), nullptr);
  EXPECT_EQ(snap.find("proto.messages.query")->count, 4u);
  EXPECT_EQ(snap.find("proto.bytes.query")->count, 160u);
  // Zero-count payload types are skipped entirely.
  EXPECT_EQ(snap.find("proto.messages.ping"), nullptr);
  EXPECT_EQ(snap.find("proto.dropped_messages")->count, 2u);
  EXPECT_EQ(snap.find("proto.retransmissions")->count, 3u);

  // Cumulative-add: a second export doubles the counters.
  proto::export_traffic_metrics(stats, registry);
  EXPECT_EQ(registry.snapshot().find("proto.messages")->count, 8u);
}

TEST(ObsHistogramView, EmptyHistogramAndClampedQuantileArguments) {
  const std::vector<double> bounds = {10.0, 20.0, 30.0};
  const std::vector<std::uint64_t> empty = {0, 0, 0, 0};
  const HistogramView none(bounds, empty);
  EXPECT_EQ(none.total(), 0u);
  EXPECT_EQ(none.quantile(0.5), 0.0);

  const std::vector<std::uint64_t> some = {4, 0, 0, 0};
  const HistogramView view(bounds, some);
  // q outside [0, 1] clamps to the endpoints.
  EXPECT_EQ(view.quantile(-3.0), view.quantile(0.0));
  EXPECT_EQ(view.quantile(7.0), view.quantile(1.0));
}

TEST(ObsHistogramView, InterpolatesUniformlyWithinABucket) {
  const std::vector<double> bounds = {10.0, 20.0, 30.0};
  const std::vector<std::uint64_t> buckets = {4, 0, 0, 0};
  const HistogramView view(bounds, buckets);
  EXPECT_EQ(view.total(), 4u);
  // Bucket 0 spans (0, 10]; rank q*4 interpolates linearly across it.
  EXPECT_DOUBLE_EQ(view.quantile(0.25), 2.5);
  EXPECT_DOUBLE_EQ(view.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(view.quantile(1.0), 10.0);
}

TEST(ObsHistogramView, BoundaryRankReturnsBucketUpperBound) {
  const std::vector<double> bounds = {10.0, 20.0, 30.0};
  const std::vector<std::uint64_t> buckets = {2, 2, 0, 0};
  const HistogramView view(bounds, buckets);
  // Rank 2 lands exactly on bucket 0's cumulative edge: the quantile is
  // bucket 0's upper bound — it never interpolates into bucket 1.
  EXPECT_DOUBLE_EQ(view.quantile(0.5), 10.0);
  // One rank past the edge starts from bucket 1's lower bound.
  EXPECT_DOUBLE_EQ(view.quantile(0.75), 15.0);
  EXPECT_DOUBLE_EQ(view.quantile(1.0), 20.0);
}

TEST(ObsHistogramView, OverflowBucketClampsToLargestFiniteBound) {
  const std::vector<double> bounds = {10.0, 20.0, 30.0};
  const std::vector<std::uint64_t> buckets = {1, 0, 0, 3};
  const HistogramView view(bounds, buckets);
  // Ranks resolved by the +inf bucket cannot be located beyond the last
  // finite bound; they clamp there instead of inventing a value.
  EXPECT_DOUBLE_EQ(view.quantile(0.9), 30.0);
  EXPECT_DOUBLE_EQ(view.quantile(1.0), 30.0);
  // Ranks inside the finite buckets are unaffected by the overflow mass.
  EXPECT_DOUBLE_EQ(view.quantile(0.25), 10.0);
}

TEST(ObsHistogramView, SnapshotHistogramViewMatchesObservations) {
  MetricsRegistry registry;
  // Bounds 5, 10, 15, 20 (+inf last).
  const MetricId id =
      registry.histogram("lat", HistogramSpec::linear(5.0, 5.0, 4));
  auto& shard = registry.shard(0);
  for (int i = 0; i < 8; ++i) shard.observe(id, 2.0);   // bucket 0
  for (int i = 0; i < 2; ++i) shard.observe(id, 12.0);  // bucket 2

  const MetricsSnapshot snap = registry.snapshot();
  const auto* h = snap.find("lat");
  ASSERT_NE(h, nullptr);
  const HistogramView view = h->histogram_view();
  EXPECT_EQ(view.total(), 10u);
  // Rank 5 of 8 in bucket (0, 5]: 5/8 of the way across.
  EXPECT_DOUBLE_EQ(view.quantile(0.5), 3.125);
  // Rank 8 is exactly bucket 0's edge; rank 9 starts bucket 2 at 10.
  EXPECT_DOUBLE_EQ(view.quantile(0.8), 5.0);
  EXPECT_DOUBLE_EQ(view.quantile(0.9), 12.5);
  EXPECT_DOUBLE_EQ(view.quantile(1.0), 15.0);
}

TEST(ObsTraffic, PayloadTypeNamesCoverEveryIndex) {
  for (std::size_t i = 0; i < proto::kPayloadTypes; ++i) {
    const char* name = proto::payload_type_name(i);
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u);
  }
  EXPECT_EQ(std::string(proto::payload_type_name(7)), "query");
}

}  // namespace
}  // namespace makalu
