// Tests for the TTL-selection policies (§6 integration of Chang & Liu).
#include <gtest/gtest.h>

#include "core/overlay_builder.hpp"
#include "graph/algorithms.hpp"
#include "net/latency_model.hpp"
#include "search/ttl_policy.hpp"
#include "test_util.hpp"

namespace makalu {
namespace {

TEST(FixedTtl, SingleAttempt) {
  FixedTtlPolicy policy(4);
  Rng rng(1);
  EXPECT_EQ(policy.schedule(rng), (std::vector<std::uint32_t>{4}));
  EXPECT_EQ(policy.name(), "fixed(4)");
}

TEST(ExpandingRing, LadderInOrder) {
  ExpandingRingPolicy policy({1, 2, 4, 7});
  Rng rng(2);
  EXPECT_EQ(policy.schedule(rng), (std::vector<std::uint32_t>{1, 2, 4, 7}));
}

TEST(ExpandingRing, RejectsUnsortedLadder) {
  EXPECT_DEATH(ExpandingRingPolicy({3, 2}), "precondition");
  EXPECT_DEATH(ExpandingRingPolicy({2, 2}), "precondition");
}

TEST(RandomizedTtl, SchedulesAreLadderSuffixes) {
  RandomizedTtlPolicy policy({1, 2, 4, 7}, 0.5);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const auto schedule = policy.schedule(rng);
    ASSERT_FALSE(schedule.empty());
    // Must be a suffix of the ladder ending at 7.
    EXPECT_EQ(schedule.back(), 7u);
    for (std::size_t j = 1; j < schedule.size(); ++j) {
      EXPECT_LT(schedule[j - 1], schedule[j]);
    }
  }
}

TEST(RandomizedTtl, ShallowBiasPrefersShallowStarts) {
  RandomizedTtlPolicy biased({1, 2, 4, 7}, 0.3);
  RandomizedTtlPolicy uniform({1, 2, 4, 7}, 1.0);
  Rng rng_a(4);
  Rng rng_b(4);
  int biased_shallow = 0;
  int uniform_shallow = 0;
  for (int i = 0; i < 2000; ++i) {
    biased_shallow += (biased.schedule(rng_a).size() == 4);  // started at 1
    uniform_shallow += (uniform.schedule(rng_b).size() == 4);
  }
  EXPECT_GT(biased_shallow, uniform_shallow + 200);
  // Uniform: each rung ~1/4 of the time.
  EXPECT_NEAR(uniform_shallow, 500, 120);
}

class PolicyExecution : public ::testing::Test {
 protected:
  static const CsrGraph& graph() {
    static const CsrGraph csr = [] {
      const EuclideanModel latency(1500, 9);
      return CsrGraph::from_graph(
          OverlayBuilder().build(latency, 5).graph);
    }();
    return csr;
  }
};

TEST_F(PolicyExecution, ExpandingRingStopsAtFirstSuccessfulRing) {
  FloodEngine engine(graph());
  const ObjectCatalog catalog(1500, 10, 0.02, 3);  // plentiful replicas
  ExpandingRingPolicy ring({1, 2, 3, 4, 6});
  Rng rng(5);
  std::size_t multi_attempt = 0;
  for (int q = 0; q < 50; ++q) {
    const auto source = static_cast<NodeId>(rng.uniform_below(1500));
    const auto r = run_with_policy(engine, ring, source, 0, catalog, rng);
    EXPECT_TRUE(r.success);
    EXPECT_LE(r.final_ttl, 6u);
    multi_attempt += (r.attempts > 1);
  }
  // At 2% replication many queries need more than TTL 1, but few need the
  // whole ladder.
  EXPECT_GT(multi_attempt, 0u);
}

TEST_F(PolicyExecution, ExpandingRingSavesMessagesOnPopularObjects) {
  FloodEngine engine(graph());
  const ObjectCatalog catalog(1500, 10, 0.05, 7);  // popular: 75 replicas
  FixedTtlPolicy fixed(4);
  ExpandingRingPolicy ring({1, 2, 4});
  Rng rng(6);
  std::uint64_t fixed_msgs = 0;
  std::uint64_t ring_msgs = 0;
  for (int q = 0; q < 100; ++q) {
    const auto source = static_cast<NodeId>(rng.uniform_below(1500));
    const auto object = static_cast<ObjectId>(rng.uniform_below(10));
    fixed_msgs +=
        run_with_policy(engine, fixed, source, object, catalog, rng)
            .total_messages;
    ring_msgs +=
        run_with_policy(engine, ring, source, object, catalog, rng)
            .total_messages;
  }
  EXPECT_LT(ring_msgs, fixed_msgs / 2);
}

TEST_F(PolicyExecution, FailedRingsAreCharged) {
  FloodEngine engine(graph());
  // Object nowhere: every ring fails and is paid for.
  const ObjectCatalog catalog(1500, 1, 1.0 / 1500.0, 11);
  ExpandingRingPolicy ring({1, 2});
  Rng rng(7);
  // Find a source at distance > 2 from the single replica.
  const NodeId holder = catalog.holders(0).front();
  const auto hops = bfs_hops(graph(), holder);
  NodeId far_source = kInvalidNode;
  for (NodeId v = 0; v < 1500; ++v) {
    if (hops[v] > 4) {
      far_source = v;
      break;
    }
  }
  ASSERT_NE(far_source, kInvalidNode);
  const auto r =
      run_with_policy(engine, ring, far_source, 0, catalog, rng);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.attempts, 2u);
  EXPECT_GT(r.total_messages, 0u);
}

TEST_F(PolicyExecution, RandomizedPolicyResolvesLikeFixed) {
  FloodEngine engine(graph());
  const ObjectCatalog catalog(1500, 10, 0.01, 13);
  RandomizedTtlPolicy randomized({2, 3, 4, 6}, 0.5);
  Rng rng(8);
  std::size_t successes = 0;
  for (int q = 0; q < 80; ++q) {
    const auto source = static_cast<NodeId>(rng.uniform_below(1500));
    const auto object = static_cast<ObjectId>(rng.uniform_below(10));
    successes +=
        run_with_policy(engine, randomized, source, object, catalog, rng)
            .success;
  }
  // The ladder tops out at TTL 6 > diameter: everything resolves.
  EXPECT_GE(successes, 78u);
}

}  // namespace
}  // namespace makalu
