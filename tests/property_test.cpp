// Randomized oracle tests: each optimized engine is checked against a
// deliberately naive reference implementation on random instances. These
// sweeps catch exactly the bookkeeping bugs (epoch reuse, frontier
// handling, sender exclusion, scratch aliasing) that hand-picked cases
// miss.
#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "bloom/abf_table.hpp"
#include "bloom/attenuated_bloom_filter.hpp"
#include "core/rating.hpp"
#include "graph/algorithms.hpp"
#include "net/latency_model.hpp"
#include "search/flood_search.hpp"
#include "spectral/laplacian.hpp"
#include "test_util.hpp"

namespace makalu {
namespace {

Graph random_graph(std::size_t n, std::size_t extra_edges, Rng& rng,
                   bool ensure_ring = true) {
  Graph g(n);
  if (ensure_ring) {
    for (NodeId v = 0; v < n; ++v) {
      g.add_edge(v, static_cast<NodeId>((v + 1) % n));
    }
  }
  for (std::size_t i = 0; i < extra_edges; ++i) {
    g.add_edge(static_cast<NodeId>(rng.uniform_below(n)),
               static_cast<NodeId>(rng.uniform_below(n)));
  }
  return g;
}

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {};

// --- Graph vs adjacency-matrix reference -----------------------------------

TEST_P(SeededProperty, GraphMatchesMatrixReferenceUnderRandomOps) {
  Rng rng(GetParam());
  const std::size_t n = 24;
  Graph g(n);
  std::vector<std::vector<bool>> matrix(n, std::vector<bool>(n, false));
  std::size_t edges = 0;
  for (int op = 0; op < 600; ++op) {
    const auto u = static_cast<NodeId>(rng.uniform_below(n));
    const auto v = static_cast<NodeId>(rng.uniform_below(n));
    if (rng.chance(0.6)) {
      const bool added = g.add_edge(u, v);
      const bool expect_add = (u != v) && !matrix[u][v];
      ASSERT_EQ(added, expect_add) << "add " << u << "," << v;
      if (expect_add) {
        matrix[u][v] = matrix[v][u] = true;
        ++edges;
      }
    } else {
      const bool removed = g.remove_edge(u, v);
      const bool expect_remove = matrix[u][v];
      ASSERT_EQ(removed, expect_remove) << "remove " << u << "," << v;
      if (expect_remove) {
        matrix[u][v] = matrix[v][u] = false;
        --edges;
      }
    }
    ASSERT_EQ(g.edge_count(), edges);
  }
  // Final structural agreement.
  for (NodeId u = 0; u < n; ++u) {
    std::size_t row_degree = 0;
    for (NodeId v = 0; v < n; ++v) {
      ASSERT_EQ(g.has_edge(u, v), static_cast<bool>(matrix[u][v]));
      row_degree += matrix[u][v];
    }
    ASSERT_EQ(g.degree(u), row_degree);
  }
  // CSR mirrors the final adjacency.
  const CsrGraph csr = CsrGraph::from_graph(g);
  for (NodeId u = 0; u < n; ++u) {
    std::set<NodeId> expected;
    for (NodeId v = 0; v < n; ++v) {
      if (matrix[u][v]) expected.insert(v);
    }
    const auto row = csr.neighbors(u);
    ASSERT_EQ(std::set<NodeId>(row.begin(), row.end()), expected);
  }
}

// --- FloodEngine vs naive per-arrival reference -----------------------------

struct NaiveFloodResult {
  std::uint64_t messages = 0;
  std::uint64_t duplicates = 0;
  std::set<NodeId> visited;
};

NaiveFloodResult naive_flood(const CsrGraph& g, NodeId source,
                             std::uint32_t ttl) {
  NaiveFloodResult out;
  out.visited.insert(source);
  // (node, sender) copies at the current hop.
  std::vector<std::pair<NodeId, NodeId>> frontier{{source, kInvalidNode}};
  for (std::uint32_t hop = 1; hop <= ttl; ++hop) {
    std::vector<std::pair<NodeId, NodeId>> next;
    for (const auto& [node, sender] : frontier) {
      for (const NodeId v : g.neighbors(node)) {
        if (v == sender) continue;
        ++out.messages;
        if (out.visited.count(v)) {
          ++out.duplicates;
          continue;
        }
        out.visited.insert(v);
        next.emplace_back(v, node);
      }
    }
    frontier = std::move(next);
  }
  return out;
}

TEST_P(SeededProperty, FloodEngineMatchesNaiveReference) {
  Rng rng(GetParam());
  const std::size_t n = 40 + rng.uniform_below(40);
  const Graph g = random_graph(n, 50, rng);
  const CsrGraph csr = CsrGraph::from_graph(g);
  FloodEngine engine(csr);
  for (int trial = 0; trial < 20; ++trial) {
    const auto source = static_cast<NodeId>(rng.uniform_below(n));
    const auto ttl = static_cast<std::uint32_t>(rng.uniform_below(6));
    FloodOptions options;
    options.ttl = ttl;
    const auto fast = engine.run(
        source, [](NodeId) { return false; }, options);
    const auto slow = naive_flood(csr, source, ttl);
    ASSERT_EQ(fast.messages, slow.messages)
        << "n=" << n << " src=" << source << " ttl=" << ttl;
    ASSERT_EQ(fast.duplicates, slow.duplicates);
    ASSERT_EQ(fast.nodes_visited, slow.visited.size());
  }
}

// --- RatingEngine vs brute-force set algebra --------------------------------

TEST_P(SeededProperty, RatingEngineMatchesBruteForce) {
  Rng rng(GetParam() ^ 0xbead);
  const std::size_t n = 30;
  const Graph g = random_graph(n, 45, rng);
  const EuclideanModel latency(n, GetParam());
  RatingWeights weights;
  weights.scaling = ProximityScaling::kPaperLiteral;  // exact paper form
  RatingEngine engine(g, latency, weights);

  for (NodeId u = 0; u < n; ++u) {
    const auto ratings = engine.rate_neighbors(u);
    // Brute force: boundary and unique reachable via std::set algebra.
    std::set<NodeId> gamma_u(g.neighbors(u).begin(), g.neighbors(u).end());
    std::set<NodeId> boundary;
    std::map<NodeId, int> seen_by;
    for (const NodeId w : gamma_u) {
      for (const NodeId x : g.neighbors(w)) {
        if (x == u || gamma_u.count(x)) continue;
        boundary.insert(x);
        ++seen_by[x];
      }
    }
    double d_max = 0.0;
    for (const NodeId w : gamma_u) {
      d_max = std::max(d_max, latency.latency(u, w));
    }
    ASSERT_EQ(ratings.size(), gamma_u.size());
    for (const auto& r : ratings) {
      std::size_t unique = 0;
      for (const NodeId x : g.neighbors(r.neighbor)) {
        if (x == u || gamma_u.count(x)) continue;
        if (seen_by[x] == 1) ++unique;
      }
      ASSERT_EQ(r.unique_reachable, unique) << "u=" << u;
      const double expected_connectivity =
          boundary.empty() ? 0.0
                           : static_cast<double>(unique) /
                                 static_cast<double>(boundary.size());
      ASSERT_NEAR(r.connectivity, expected_connectivity, 1e-12);
      const double d = std::max(1e-6, latency.latency(u, r.neighbor));
      ASSERT_NEAR(r.proximity, std::max(1e-6, d_max) / d, 1e-9);
    }
    ASSERT_EQ(engine.boundary_size(u), boundary.size());
  }
}

// --- Dijkstra vs Floyd-Warshall ---------------------------------------------

TEST_P(SeededProperty, DijkstraMatchesFloydWarshall) {
  Rng rng(GetParam() ^ 0xf10d);
  const std::size_t n = 20;
  const Graph g = random_graph(n, 25, rng);
  // Random positive weights, symmetric.
  std::map<std::pair<NodeId, NodeId>, double> weight;
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : g.neighbors(u)) {
      if (v > u) {
        weight[{u, v}] = rng.uniform(0.5, 10.0);
      }
    }
  }
  auto w = [&](NodeId a, NodeId b) {
    return weight.at({std::min(a, b), std::max(a, b)});
  };
  const CsrGraph csr = CsrGraph::from_graph(g, w);

  // Floyd-Warshall reference.
  std::vector<std::vector<double>> dist(
      n, std::vector<double>(n, kUnreachableCost));
  for (NodeId u = 0; u < n; ++u) dist[u][u] = 0.0;
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : g.neighbors(u)) dist[u][v] = w(u, v);
  }
  for (NodeId k = 0; k < n; ++k) {
    for (NodeId i = 0; i < n; ++i) {
      for (NodeId j = 0; j < n; ++j) {
        dist[i][j] = std::min(dist[i][j], dist[i][k] + dist[k][j]);
      }
    }
  }
  for (NodeId s = 0; s < n; ++s) {
    const auto costs = dijkstra_costs(csr, s);
    for (NodeId t = 0; t < n; ++t) {
      ASSERT_NEAR(costs[t], dist[s][t], 1e-9) << s << "->" << t;
    }
  }
}

// --- Spectral invariants on random graphs -----------------------------------

TEST_P(SeededProperty, NormalizedSpectrumInvariants) {
  Rng rng(GetParam() ^ 0x57ec);
  const std::size_t n = 24;
  // Possibly disconnected: skip the ring half the time.
  const Graph g = random_graph(n, 30, rng, rng.chance(0.5));
  const CsrGraph csr = CsrGraph::from_graph(g);
  const auto spectrum = normalized_laplacian_spectrum(csr);
  ASSERT_EQ(spectrum.size(), n);
  double trace = 0.0;
  for (const double ev : spectrum) {
    EXPECT_GE(ev, -1e-8);
    EXPECT_LE(ev, 2.0 + 1e-8);
    trace += ev;
  }
  // Trace = number of non-isolated vertices.
  std::size_t non_isolated = 0;
  for (NodeId v = 0; v < n; ++v) non_isolated += (csr.degree(v) > 0);
  EXPECT_NEAR(trace, static_cast<double>(non_isolated), 1e-7);
  // Multiplicity of 0 counts components (isolated vertices included:
  // their normalized row is all-zero, contributing eigenvalue 0).
  const auto comps = connected_components(csr);
  EXPECT_EQ(eigenvalue_multiplicity(spectrum, 0.0, 1e-7), comps.count);
}

// --- Blocked ABF delta slab vs shadow map -----------------------------------

// Random set/erase interleavings over many owners, checked row for row
// against a plain map: one owner's RowArena row must never leak into or
// clobber another's (aliasing is exactly the freelist/relocation bug
// class the slab design risks), and compact() must preserve content while
// driving slack to zero.
TEST_P(SeededProperty, BlockedDeltaRowsNeverAliasUnderRandomOps) {
  Rng rng(GetParam() * 6961 + 23);
  const std::size_t nodes = 24;
  const std::size_t depth = 3;
  BlockedAbfTable table(nodes, depth, /*level_bits=*/256, /*hashes=*/3);

  // shadow[owner] maps (arc_local, level) -> sorted positions.
  using ArcLevel = std::pair<std::size_t, std::size_t>;
  std::vector<std::map<ArcLevel, std::vector<std::uint16_t>>> shadow(nodes);

  const auto verify_all_rows = [&]() {
    for (std::uint32_t owner = 0; owner < nodes; ++owner) {
      std::map<ArcLevel, std::vector<std::uint16_t>> decoded;
      for (const std::uint32_t entry : table.owner_deltas(owner)) {
        decoded[{BlockedAbfTable::delta_arc_local(entry),
                 BlockedAbfTable::delta_level(entry)}]
            .push_back(BlockedAbfTable::delta_pos(entry));
      }
      for (auto& [arc_level, positions] : decoded) {
        std::sort(positions.begin(), positions.end());
      }
      // Drop empty vectors from the shadow before comparing.
      std::map<ArcLevel, std::vector<std::uint16_t>> expected;
      for (const auto& [arc_level, positions] : shadow[owner]) {
        if (!positions.empty()) expected[arc_level] = positions;
      }
      ASSERT_EQ(decoded, expected) << "owner " << owner;
    }
  };

  for (int op = 0; op < 400; ++op) {
    const auto owner = static_cast<std::uint32_t>(rng.uniform_below(nodes));
    const std::size_t arc_local = rng.uniform_below(6);
    const std::size_t level = 1 + rng.uniform_below(depth - 1);
    if (rng.chance(0.6)) {
      // Replace the (arc, level) position set with a fresh random one
      // (possibly empty — which must clear stale entries).
      std::set<std::uint16_t> fresh;
      const std::size_t count = rng.uniform_below(5);
      for (std::size_t i = 0; i < count; ++i) {
        fresh.insert(static_cast<std::uint16_t>(rng.uniform_below(256)));
      }
      const std::vector<std::uint16_t> positions(fresh.begin(), fresh.end());
      table.set_arc_delta(owner, arc_local, level, positions);
      shadow[owner][{arc_local, level}] = positions;
    } else {
      const auto pos = static_cast<std::uint16_t>(rng.uniform_below(256));
      const bool erased =
          table.erase_delta_position(owner, arc_local, level, pos);
      auto& positions = shadow[owner][{arc_local, level}];
      const auto it =
          std::find(positions.begin(), positions.end(), pos);
      EXPECT_EQ(erased, it != positions.end());
      if (it != positions.end()) positions.erase(it);
    }
    if (op % 80 == 79) {
      verify_all_rows();
      table.compact_deltas();
      EXPECT_EQ(table.delta_slack_ratio(), 0.0);
      verify_all_rows();  // compaction must not move content across rows
    }
  }
  verify_all_rows();
}

// --- Blocked shift-merge vs AttenuatedBloomFilter reference -----------------

// merge_shifted_from on blocked stacks must reproduce the reference
// deepest-first walk bit for bit — including the self-merge case, whose
// semantics are "merge the PRE-state" (no cascading a level's new bits
// into the next). Equal widths + the shared double-hash family make the
// two representations directly comparable word for word.
TEST_P(SeededProperty, BlockedShiftMergeMatchesAttenuatedReference) {
  Rng rng(GetParam() * 769 + 41);
  const std::size_t nodes = 8;
  const std::size_t depth = 3;
  const BloomParameters params{/*bits=*/256, /*hashes=*/3};
  BlockedAbfTable table(nodes, depth, params.bits, params.hashes);
  std::vector<AttenuatedBloomFilter> reference(
      nodes, AttenuatedBloomFilter(depth, params));

  const auto expect_equal_bits = [&](std::uint32_t node) {
    for (std::size_t level = 0; level < depth; ++level) {
      const auto ref_words = reference[node].level(level).words();
      const std::uint64_t* words = table.level_words(node, level);
      for (std::size_t w = 0; w < ref_words.size(); ++w) {
        ASSERT_EQ(words[w], ref_words[w])
            << "node " << node << " level " << level << " word " << w;
      }
    }
  };

  // Seed random content at random levels.
  for (int i = 0; i < 40; ++i) {
    const auto node = static_cast<std::uint32_t>(rng.uniform_below(nodes));
    const std::size_t level = rng.uniform_below(depth);
    const std::uint64_t key = rng.uniform_below(1000);
    table.insert(node, level, key);
    reference[node].insert_at(level, key);
  }
  for (std::uint32_t v = 0; v < nodes; ++v) expect_equal_bits(v);

  // Random shift-merges, self-merge included. The reference applies the
  // shift from a COPY of the source, pinning pre-state semantics; the
  // blocked implementation must match without copying (deepest-first).
  for (int i = 0; i < 60; ++i) {
    const auto dst = static_cast<std::uint32_t>(rng.uniform_below(nodes));
    const auto src = (i % 10 == 0)
                         ? dst  // force regular self-merge coverage
                         : static_cast<std::uint32_t>(
                               rng.uniform_below(nodes));
    table.merge_shifted_from(dst, src);
    const AttenuatedBloomFilter snapshot = reference[src];
    reference[dst].merge_shifted_from(snapshot);
    expect_equal_bits(dst);
  }
  for (std::uint32_t v = 0; v < nodes; ++v) expect_equal_bits(v);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace makalu
