// Differential property tests for the incremental rating cache.
//
// The CachedRatingEngine's whole contract is "bitwise indistinguishable
// from recomputing from scratch". These tests drive random mutation
// sequences (edge adds, edge removals, node arrivals) over mixed
// topologies and, after EVERY step, compare the cache's answer for EVERY
// node against a fresh RatingEngine: per-neighbor scores and components,
// boundary sizes, and eviction candidates, with exact double equality, in
// both ProximityScaling modes. Across the suite the sequences total 10k
// mutations.
#include <cstdint>

#include <gtest/gtest.h>

#include "core/rating.hpp"
#include "core/rating_cache.hpp"
#include "graph/graph.hpp"
#include "net/latency_model.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace makalu {
namespace {

// Every observable of the cache must match a from-scratch evaluation,
// exactly: the cache memoizes, it must never approximate.
void expect_cache_matches_fresh(CachedRatingEngine& cache, const Graph& g,
                                const LatencyModel& latency,
                                const RatingWeights& weights,
                                std::size_t step) {
  RatingEngine fresh(g, latency, weights);
  NodeRatings expected;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    fresh.rate_node(u, expected);
    const NodeRatings& got = cache.ratings_for(u);
    ASSERT_EQ(got.ratings.size(), expected.ratings.size())
        << "step " << step << " node " << u;
    for (std::size_t i = 0; i < expected.ratings.size(); ++i) {
      const NeighborRating& e = expected.ratings[i];
      const NeighborRating& a = got.ratings[i];
      ASSERT_EQ(a.neighbor, e.neighbor) << "step " << step << " node " << u;
      ASSERT_EQ(a.score, e.score)
          << "step " << step << " node " << u << " neighbor " << e.neighbor;
      ASSERT_EQ(a.connectivity, e.connectivity)
          << "step " << step << " node " << u << " neighbor " << e.neighbor;
      ASSERT_EQ(a.proximity, e.proximity)
          << "step " << step << " node " << u << " neighbor " << e.neighbor;
      ASSERT_EQ(a.unique_reachable, e.unique_reachable)
          << "step " << step << " node " << u << " neighbor " << e.neighbor;
    }
    ASSERT_EQ(got.boundary, expected.boundary)
        << "step " << step << " node " << u;
    ASSERT_EQ(got.worst, expected.worst) << "step " << step << " node " << u;
    // Cross-check the independent boundary-only path too.
    ASSERT_EQ(cache.boundary_size(u), fresh.boundary_size(u))
        << "step " << step << " node " << u;
  }
}

// Runs `steps` random mutations over `g`, validating after every one.
// When `grow` is set, a few steps add brand-new nodes (exercising the
// cache's growth path) until the latency model's capacity is reached.
void run_differential(Graph g, const LatencyModel& latency,
                      const RatingWeights& weights, std::size_t steps,
                      std::uint64_t seed, bool grow = false) {
  CachedRatingEngine cache(g, latency, weights);
  Rng rng(seed);
  expect_cache_matches_fresh(cache, g, latency, weights, 0);
  for (std::size_t step = 1; step <= steps; ++step) {
    const bool can_grow = grow && g.node_count() < latency.node_count();
    if (can_grow && rng.chance(0.05)) {
      const NodeId fresh_id = g.add_node();
      const auto peer =
          static_cast<NodeId>(rng.uniform_below(g.node_count()));
      if (peer != fresh_id) g.add_edge(fresh_id, peer);
    } else if (g.edge_count() > 0 && rng.chance(0.4)) {
      // Remove a random incident edge of a random connected node.
      NodeId u;
      do {
        u = static_cast<NodeId>(rng.uniform_below(g.node_count()));
      } while (g.degree(u) == 0);
      const auto nbrs = g.neighbors(u);
      g.remove_edge(u, nbrs[rng.uniform_below(nbrs.size())]);
    } else {
      // Random add; self/duplicate picks are no-op mutations and still a
      // valid (if trivial) differential step.
      const auto u = static_cast<NodeId>(rng.uniform_below(g.node_count()));
      const auto v = static_cast<NodeId>(rng.uniform_below(g.node_count()));
      if (u != v) g.add_edge(u, v);
    }
    expect_cache_matches_fresh(cache, g, latency, weights, step);
  }
  // A cache that recomputes everything on every query would also pass the
  // comparisons; make sure memoization actually happened.
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_GT(cache.misses(), 0u);
}

Graph random_graph(std::size_t n, std::size_t extra_edges,
                   std::uint64_t seed) {
  Graph g = testing::make_cycle(n);  // connected backbone
  Rng rng(seed);
  for (std::size_t i = 0; i < extra_edges; ++i) {
    const auto u = static_cast<NodeId>(rng.uniform_below(n));
    const auto v = static_cast<NodeId>(rng.uniform_below(n));
    if (u != v) g.add_edge(u, v);
  }
  return g;
}

RatingWeights weights_for(ProximityScaling scaling) {
  RatingWeights w;
  w.scaling = scaling;
  return w;
}

class RatingCacheDifferential
    : public ::testing::TestWithParam<ProximityScaling> {};

TEST_P(RatingCacheDifferential, RandomGraphMutations) {
  const EuclideanModel latency(48, 101);
  run_differential(random_graph(48, 100, 7), latency,
                   weights_for(GetParam()), 2000, 11);
}

TEST_P(RatingCacheDifferential, SparseCycleWithChords) {
  const EuclideanModel latency(40, 103);
  run_differential(random_graph(40, 12, 9), latency,
                   weights_for(GetParam()), 1500, 13);
}

TEST_P(RatingCacheDifferential, BarbellCommunities) {
  const EuclideanModel latency(24, 107);
  run_differential(testing::make_barbell(12), latency,
                   weights_for(GetParam()), 1000, 17);
}

TEST_P(RatingCacheDifferential, GrowingNetwork) {
  // Start well below the latency model's capacity and let ~5% of steps
  // add nodes: exercises on_node_added table growth mid-sequence.
  const EuclideanModel latency(64, 109);
  run_differential(random_graph(24, 30, 19), latency,
                   weights_for(GetParam()), 500, 23,
                   /*grow=*/true);
}

INSTANTIATE_TEST_SUITE_P(
    BothScalings, RatingCacheDifferential,
    ::testing::Values(ProximityScaling::kNormalized,
                      ProximityScaling::kPaperLiteral),
    [](const ::testing::TestParamInfo<ProximityScaling>& param_info) {
      return param_info.param == ProximityScaling::kNormalized
                 ? "Normalized"
                 : "PaperLiteral";
    });

// The cache must not invalidate the world on every mutation: a single
// edge flip in a large sparse graph leaves distant entries warm.
TEST(RatingCache, InvalidationIsLocal) {
  const std::size_t n = 200;
  const EuclideanModel latency(n, 113);
  Graph g = testing::make_cycle(n);
  CachedRatingEngine cache(g, latency, RatingWeights{});
  for (NodeId u = 0; u < n; ++u) (void)cache.ratings_for(u);  // warm all
  const std::uint64_t warm_misses = cache.misses();
  g.remove_edge(0, 1);
  g.add_edge(0, 1);
  for (NodeId u = 0; u < n; ++u) (void)cache.ratings_for(u);
  // Two mutations at {0,1}: each dirties the endpoints plus their cycle
  // neighbors — entries outside that ball must still be warm.
  EXPECT_LE(cache.misses() - warm_misses, 8u);
  EXPECT_EQ(cache.invalidations(), 2u);
}

// Scratch-engine recomputation (the parallel path) produces the same
// bits as the serial accessor path.
TEST(RatingCache, ScratchRecomputeMatchesSerial) {
  const std::size_t n = 60;
  const EuclideanModel latency(n, 127);
  Graph g = random_graph(n, 150, 29);
  Graph g2 = g;  // independent copy for the serial twin
  CachedRatingEngine scratch_cache(g, latency, RatingWeights{});
  CachedRatingEngine serial_cache(g2, latency, RatingWeights{});
  RatingEngine scratch = scratch_cache.make_scratch();
  for (NodeId u = 0; u < n; ++u) {
    const NodeRatings& a = scratch_cache.ratings_for(u, scratch);
    const NodeRatings& b = serial_cache.ratings_for(u);
    ASSERT_EQ(a.ratings.size(), b.ratings.size());
    for (std::size_t i = 0; i < a.ratings.size(); ++i) {
      ASSERT_EQ(a.ratings[i].score, b.ratings[i].score);
    }
    ASSERT_EQ(a.boundary, b.boundary);
    ASSERT_EQ(a.worst, b.worst);
  }
}

// The observer hook detaches cleanly: once the cache dies, mutating the
// graph is safe, and a successor cache can attach.
TEST(RatingCache, DetachesOnDestruction) {
  const EuclideanModel latency(10, 131);
  Graph g = testing::make_cycle(10);
  {
    CachedRatingEngine cache(g, latency, RatingWeights{});
    EXPECT_EQ(g.observer(), &cache);
  }
  EXPECT_EQ(g.observer(), nullptr);
  g.add_edge(0, 5);  // no dangling observer
  CachedRatingEngine next(g, latency, RatingWeights{});
  EXPECT_EQ(next.ratings_for(0).ratings.size(), g.degree(0));
}

}  // namespace
}  // namespace makalu
