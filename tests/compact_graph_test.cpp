// Unit tests for the arena-backed compact graph storage (DESIGN.md §13):
// RowArena mechanics (size-class ladder, freelist reuse, epoch
// compaction, slack accounting), the Graph storage-policy seam, and the
// Graph invariants the refactor leaned on — has_edge probing the
// lower-degree endpoint, and remove_nodes' mapping/observer contracts —
// under both storage policies.
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "graph/compact_graph.hpp"
#include "graph/graph.hpp"
#include "test_util.hpp"

namespace makalu {
namespace {

TEST(RowArena, ClassLadder) {
  // Floors: largest class <= cap, 0 below the minimum class.
  EXPECT_EQ(row_arena_class_floor(0), 0u);
  EXPECT_EQ(row_arena_class_floor(3), 0u);
  EXPECT_EQ(row_arena_class_floor(4), 4u);
  EXPECT_EQ(row_arena_class_floor(5), 4u);
  EXPECT_EQ(row_arena_class_floor(6), 6u);
  EXPECT_EQ(row_arena_class_floor(8), 6u);
  EXPECT_EQ(row_arena_class_floor(9), 9u);
  EXPECT_EQ(row_arena_class_floor(12), 9u);
  EXPECT_EQ(row_arena_class_floor(13), 13u);
  // Ceils: smallest class >= need.
  EXPECT_EQ(row_arena_class_ceil(0), 4u);
  EXPECT_EQ(row_arena_class_ceil(4), 4u);
  EXPECT_EQ(row_arena_class_ceil(5), 6u);
  EXPECT_EQ(row_arena_class_ceil(7), 9u);
  EXPECT_EQ(row_arena_class_ceil(10), 13u);
  EXPECT_EQ(row_arena_class_ceil(14), 19u);
  // Growth progress: the result must exceed `at_least` even when `need`
  // already fits, so a full row always relocates to a bigger block.
  EXPECT_EQ(row_arena_class_ceil(4, 4), 6u);
  EXPECT_EQ(row_arena_class_ceil(5, 6), 9u);
  // The ladder is exactly the c += c/2 sequence.
  std::uint32_t c = kRowArenaMinCapacity;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(row_arena_class_floor(c), c);
    EXPECT_EQ(row_arena_class_ceil(c), c);
    c += c / 2;
  }
}

TEST(RowArena, PushGrowsThroughClasses) {
  RowArena<std::uint32_t> arena(1);
  for (std::uint32_t i = 0; i < 50; ++i) {
    arena.push(0, i);
    ASSERT_EQ(arena.size(0), i + 1);
    ASSERT_GE(arena.capacity(0), arena.size(0));
    // Capacity is always a ladder value.
    ASSERT_EQ(row_arena_class_floor(arena.capacity(0)), arena.capacity(0));
  }
  const auto row = arena.row(0);
  ASSERT_EQ(row.size(), 50u);
  for (std::uint32_t i = 0; i < 50; ++i) EXPECT_EQ(row[i], i);
  EXPECT_EQ(arena.live_size(), 50u);
}

TEST(RowArena, EraseValueIsSwapWithLast) {
  RowArena<std::uint32_t> arena(1);
  for (std::uint32_t v : {10u, 20u, 30u, 40u}) arena.push(0, v);
  EXPECT_TRUE(arena.erase_value(0, 20u));
  // 40 (the last element) moved into 20's slot.
  const auto row = arena.row(0);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], 10u);
  EXPECT_EQ(row[1], 40u);
  EXPECT_EQ(row[2], 30u);
  EXPECT_FALSE(arena.erase_value(0, 99u));
  EXPECT_EQ(arena.size(0), 3u);
}

TEST(RowArena, FreelistReusesRelocatedBlocks) {
  RowArena<std::uint32_t> arena(2);
  // Grow row 0 past the first class; its old 4-slot block is freed.
  for (std::uint32_t i = 0; i < 5; ++i) arena.push(0, i);
  const std::size_t bytes_after_grow = arena.memory_bytes();
  EXPECT_GT(arena.slack_ratio(), 0.0);  // the freed block is garbage
  // Row 1's first growth should land on the freed 4-slot block instead of
  // extending the slab.
  arena.push(1, 100u);
  EXPECT_LE(arena.memory_bytes(), bytes_after_grow);
  EXPECT_EQ(arena.row(1)[0], 100u);
  // Row 0 is untouched by row 1's allocation.
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(arena.row(0)[i], i);
}

TEST(RowArena, CompactRepacksTightAndBumpsEpoch) {
  RowArena<std::uint32_t> arena(3);
  for (std::uint32_t r = 0; r < 3; ++r) {
    for (std::uint32_t i = 0; i < 7; ++i) arena.push(r, r * 100 + i);
  }
  arena.erase_value(1, 103u);
  const std::uint64_t epoch_before = arena.epoch();
  const std::size_t live = arena.live_size();
  arena.compact();
  EXPECT_EQ(arena.epoch(), epoch_before + 1);
  EXPECT_EQ(arena.live_size(), live);
  EXPECT_EQ(arena.slack_ratio(), 0.0);
  for (std::uint32_t r = 0; r < 3; ++r) {
    EXPECT_EQ(arena.capacity(r), arena.size(r));  // tight
  }
  // Content survives, element for element.
  EXPECT_EQ(arena.row(0)[6], 6u);
  EXPECT_EQ(arena.row(2)[0], 200u);
  // Post-compaction rows still grow correctly (fresh blocks, dropped
  // freelists).
  arena.push(0, 999u);
  EXPECT_EQ(arena.row(0).back(), 999u);
}

TEST(RowArena, SlackRatioTracksGarbage) {
  RowArena<std::uint32_t> arena(1);
  EXPECT_EQ(arena.slack_ratio(), 0.0);  // empty slab
  for (std::uint32_t i = 0; i < 4; ++i) arena.push(0, i);
  EXPECT_EQ(arena.slack_ratio(), 0.0);  // one live block, no garbage
  for (std::uint32_t i = 4; i < 20; ++i) arena.push(0, i);
  // Two relocations behind us: freed 4- and 6-slot blocks are garbage.
  EXPECT_GT(arena.slack_ratio(), 0.0);
  arena.compact();
  EXPECT_EQ(arena.slack_ratio(), 0.0);
}

// --- Graph-level storage policy ---------------------------------------

TEST(CompactGraph, MatchesAdjacencyElementForElement) {
  // The two storages promise identical neighbor *sequences*, not just
  // identical edge sets: append on add, swap-with-last on remove.
  Graph a(8, GraphStorage::kAdjacencySet);
  Graph c(8, GraphStorage::kCompact);
  const auto both = [&](auto&& op) {
    op(a);
    op(c);
  };
  both([](Graph& g) {
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(0, 3);
    g.add_edge(0, 4);
    g.add_edge(2, 3);
    g.remove_edge(0, 2);  // swap-with-last reorders both rows
    g.add_edge(0, 5);
    g.isolate(3);
  });
  ASSERT_EQ(a.edge_count(), c.edge_count());
  for (NodeId u = 0; u < 8; ++u) {
    const auto na = a.neighbors(u);
    const auto nc = c.neighbors(u);
    ASSERT_EQ(std::vector<NodeId>(na.begin(), na.end()),
              std::vector<NodeId>(nc.begin(), nc.end()))
        << "node " << u;
  }
}

TEST(CompactGraph, CompactStoragePreservesRowsAndCountsEpochs) {
  Graph g(6, GraphStorage::kCompact);
  for (NodeId v = 1; v < 6; ++v) g.add_edge(0, v);
  g.add_edge(1, 2);
  const std::vector<NodeId> before(g.neighbors(0).begin(),
                                   g.neighbors(0).end());
  const std::uint64_t epoch = g.storage_epoch();
  g.compact_storage();
  EXPECT_EQ(g.storage_epoch(), epoch + 1);
  EXPECT_EQ(g.storage_slack_ratio(), 0.0);
  const std::vector<NodeId> after(g.neighbors(0).begin(),
                                  g.neighbors(0).end());
  EXPECT_EQ(before, after);
  // Adjacency graphs report no-op semantics.
  Graph adj(4);
  adj.add_edge(0, 1);
  adj.compact_storage();
  EXPECT_EQ(adj.storage_epoch(), 0u);
  EXPECT_EQ(adj.storage_slack_ratio(), 0.0);
}

TEST(CompactGraph, CopyAndMoveCarryStorage) {
  Graph g(4, GraphStorage::kCompact);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  Graph copy(g);
  EXPECT_EQ(copy.storage(), GraphStorage::kCompact);
  EXPECT_TRUE(copy.has_edge(1, 2));
  copy.add_edge(2, 3);  // independent of the original
  EXPECT_FALSE(g.has_edge(2, 3));
  Graph moved(std::move(copy));
  EXPECT_EQ(moved.storage(), GraphStorage::kCompact);
  EXPECT_TRUE(moved.has_edge(2, 3));
  EXPECT_EQ(moved.edge_count(), 3u);
}

TEST(CompactGraph, MemoryFootprintBeatsAdjacencyOnUniformRows) {
  // 1000 nodes of degree 10: the slab should undercut per-node vectors
  // comfortably (the whole point of the representation). At this degree
  // the adjacency side pays a 24-byte vector header plus a
  // capacity-16 heap chunk per row against the arena's 12-byte
  // descriptor plus tight 4-byte endpoints, about a 1.8x gap; the gap
  // widens with degree, so assert a conservative 0.6x bound here and
  // leave the headline >= 4x (graph + rating cache) to bench_scale.
  constexpr std::size_t kN = 1000;
  Graph a(kN, GraphStorage::kAdjacencySet);
  Graph c(kN, GraphStorage::kCompact);
  for (NodeId u = 0; u < kN; ++u) {
    for (NodeId k = 1; k <= 5; ++k) {
      const auto v = static_cast<NodeId>((u + k) % kN);
      a.add_edge(u, v);
      c.add_edge(u, v);
    }
  }
  c.compact_storage();
  EXPECT_LT(c.memory_footprint() * 5, a.memory_footprint() * 3)
      << "compact=" << c.memory_footprint()
      << " adjacency=" << a.memory_footprint();
}

// --- has_edge probe orientation (satellite) ----------------------------

TEST(CompactGraph, HasEdgeProbesLowerDegreeEndpoint) {
  // A hub-leaf query must scan the leaf's 1-entry list, not the hub's —
  // O(min(deg)) instead of O(max(deg)). The behavioral contract (symmetry
  // and correctness) is checked under both storages; the complexity claim
  // is pinned by construction: both orders answer identically regardless
  // of which endpoint is the hub.
  for (const GraphStorage storage :
       {GraphStorage::kAdjacencySet, GraphStorage::kCompact}) {
    Graph g(1002, storage);
    // Node 0 is a hub with 1000 leaves; node 1001 is disconnected.
    for (NodeId v = 1; v <= 1000; ++v) g.add_edge(0, v);
    EXPECT_TRUE(g.has_edge(0, 500));
    EXPECT_TRUE(g.has_edge(500, 0));  // symmetric, leaf side first
    EXPECT_FALSE(g.has_edge(0, 1001));
    EXPECT_FALSE(g.has_edge(1001, 0));
    EXPECT_FALSE(g.has_edge(500, 501));  // two leaves, no edge
    // Degenerate: querying an isolated pair touches empty lists only.
    EXPECT_FALSE(g.has_edge(1001, 1001));
  }
}

// --- remove_nodes contracts (satellite) --------------------------------

TEST(CompactGraph, RemoveNodesMapsInterleavedDeadNodes) {
  for (const GraphStorage storage :
       {GraphStorage::kAdjacencySet, GraphStorage::kCompact}) {
    // Cycle 0-1-2-3-4-5-0 with chords; kill the odd nodes.
    Graph g(6, storage);
    for (NodeId v = 0; v < 6; ++v) {
      g.add_edge(v, static_cast<NodeId>((v + 1) % 6));
    }
    g.add_edge(0, 2);
    g.add_edge(2, 4);
    const std::vector<bool> failed = {false, true, false, true, false, true};
    std::vector<NodeId> old_to_new;
    const Graph sub = g.remove_nodes(failed, &old_to_new);
    ASSERT_EQ(sub.node_count(), 3u);
    ASSERT_EQ(old_to_new.size(), 6u);
    EXPECT_EQ(old_to_new[0], 0u);
    EXPECT_EQ(old_to_new[1], kInvalidNode);
    EXPECT_EQ(old_to_new[2], 1u);
    EXPECT_EQ(old_to_new[3], kInvalidNode);
    EXPECT_EQ(old_to_new[4], 2u);
    EXPECT_EQ(old_to_new[5], kInvalidNode);
    // Surviving edges are exactly the chords between survivors.
    EXPECT_EQ(sub.edge_count(), 2u);
    EXPECT_TRUE(sub.has_edge(0, 1));   // old 0-2
    EXPECT_TRUE(sub.has_edge(1, 2));   // old 2-4
    EXPECT_FALSE(sub.has_edge(0, 2));  // old 0-4 never existed
    // The subgraph keeps the parent's storage policy.
    EXPECT_EQ(sub.storage(), storage);
  }
}

TEST(CompactGraph, RemoveNodesResultHasNoObserver) {
  // remove_nodes returns a fresh graph: any observer on the source must
  // not leak onto the subgraph (its node ids would be meaningless there).
  struct CountingObserver final : GraphObserver {
    int events = 0;
    void on_edge_added(NodeId, NodeId) override { ++events; }
    void on_edge_removed(NodeId, NodeId) override { ++events; }
    void on_node_added(NodeId) override { ++events; }
  };
  Graph g = testing::make_cycle(5);
  CountingObserver obs;
  g.set_observer(&obs);
  std::vector<bool> failed(5, false);
  failed[0] = true;
  Graph sub = g.remove_nodes(failed);
  EXPECT_EQ(sub.observer(), nullptr);
  const int events_before = obs.events;
  sub.add_edge(0, 2);  // must not notify the source's observer
  EXPECT_EQ(obs.events, events_before);
  g.set_observer(nullptr);
}

TEST(CompactGraph, RemoveNodesEquivalentAcrossStorages) {
  // Same kill mask over the same topology: both storages must produce the
  // same surviving structure (sequences may differ only if the source
  // sequences differed, which they don't — pinned above).
  Graph a(12, GraphStorage::kAdjacencySet);
  Graph c(12, GraphStorage::kCompact);
  for (NodeId u = 0; u < 12; ++u) {
    for (NodeId k = 1; k <= 3; ++k) {
      a.add_edge(u, static_cast<NodeId>((u + k) % 12));
      c.add_edge(u, static_cast<NodeId>((u + k) % 12));
    }
  }
  std::vector<bool> failed(12, false);
  failed[1] = failed[6] = failed[7] = true;
  std::vector<NodeId> map_a;
  std::vector<NodeId> map_c;
  const Graph sub_a = a.remove_nodes(failed, &map_a);
  const Graph sub_c = c.remove_nodes(failed, &map_c);
  EXPECT_EQ(map_a, map_c);
  ASSERT_EQ(sub_a.node_count(), sub_c.node_count());
  ASSERT_EQ(sub_a.edge_count(), sub_c.edge_count());
  for (NodeId u = 0; u < sub_a.node_count(); ++u) {
    const auto na = sub_a.neighbors(u);
    const auto nc = sub_c.neighbors(u);
    ASSERT_EQ(std::vector<NodeId>(na.begin(), na.end()),
              std::vector<NodeId>(nc.begin(), nc.end()))
        << "node " << u;
  }
}

}  // namespace
}  // namespace makalu
