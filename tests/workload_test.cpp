// Workload subsystem suite: arrival-generator statistics and seeded
// determinism, Zipf catalog rank-frequency + churn soundness through the
// counting-ABF waves, the open-loop engine's determinism ladder
// (slicing/thread-count invariance, fixed-index churn boundaries), the
// saturation search against a backend of known capacity, and the
// closed-loop paper-preset zero-drift parity contract
// (workload::closed_loop_flood_batch == run_flood_batch, bit for bit).
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <numeric>
#include <string_view>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/flood_experiments.hpp"
#include "analysis/parallel_query_driver.hpp"
#include "analysis/topology_factory.hpp"
#include "analysis/traffic_comparison.hpp"
#include "bloom/counting_bloom_filter.hpp"
#include "search/abf_search.hpp"
#include "search/flood_search.hpp"
#include "test_util.hpp"
#include "workload/arrival.hpp"
#include "workload/catalog.hpp"
#include "workload/closed_loop.hpp"
#include "workload/engine.hpp"
#include "workload/saturation.hpp"

namespace makalu::workload {
namespace {

using testing::ConstantLatency;
using testing::make_cycle;

// ---------------------------------------------------------------------------
// Arrival processes

TEST(ArrivalProcess, PoissonSeedDeterminismAndMonotonicity) {
  const auto a = poisson_arrivals(500.0, 77)->take(2'000);
  const auto b = poisson_arrivals(500.0, 77)->take(2'000);
  EXPECT_EQ(a, b);  // byte-identical timestamp stream from the seed

  const auto c = poisson_arrivals(500.0, 78)->take(2'000);
  EXPECT_NE(a, c);

  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  EXPECT_GT(a.front(), 0.0);
}

TEST(ArrivalProcess, TakeMatchesRepeatedNext) {
  const auto vec = poisson_arrivals(100.0, 5)->take(64);
  const auto one_by_one = poisson_arrivals(100.0, 5);
  for (const double t : vec) EXPECT_EQ(t, one_by_one->next_ms());
}

TEST(ArrivalProcess, PoissonInterarrivalMoments) {
  // rate 1000 q/s => exponential interarrivals, mean 1 ms, variance 1 ms^2.
  constexpr std::size_t kSamples = 50'000;
  const auto times = poisson_arrivals(1000.0, 42)->take(kSamples);
  std::vector<double> gaps(kSamples);
  double prev = 0.0;
  for (std::size_t i = 0; i < kSamples; ++i) {
    gaps[i] = times[i] - prev;
    prev = times[i];
  }
  const double mean =
      std::accumulate(gaps.begin(), gaps.end(), 0.0) / kSamples;
  double var = 0.0;
  for (const double g : gaps) var += (g - mean) * (g - mean);
  var /= kSamples;
  // Standard error of the mean is 1/sqrt(50k) ~ 0.45%; 5% bands are >10
  // sigma, so a failure means a broken generator, not an unlucky seed.
  EXPECT_NEAR(mean, 1.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.10);
}

TEST(ArrivalProcess, BurstyLongRunRateIsCalibrated) {
  BurstyOptions options;
  options.rate_qps = 2'000.0;
  options.burst_factor = 8.0;
  constexpr std::size_t kSamples = 100'000;
  const auto times = bursty_arrivals(options, 9)->take(kSamples);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  const double measured_qps = 1000.0 * kSamples / times.back();
  EXPECT_NEAR(measured_qps, options.rate_qps, 0.1 * options.rate_qps);
  EXPECT_EQ(bursty_arrivals(options, 9)->nominal_qps(), 2'000.0);
}

TEST(ArrivalProcess, BurstyIsActuallyBursty) {
  // Squared coefficient of variation of interarrivals: 1 for Poisson,
  // strictly larger for an MMPP with distinct state rates.
  BurstyOptions options;
  options.rate_qps = 2'000.0;
  options.burst_factor = 10.0;
  constexpr std::size_t kSamples = 100'000;
  const auto times = bursty_arrivals(options, 4)->take(kSamples);
  std::vector<double> gaps(kSamples);
  double prev = 0.0;
  for (std::size_t i = 0; i < kSamples; ++i) {
    gaps[i] = times[i] - prev;
    prev = times[i];
  }
  const double mean =
      std::accumulate(gaps.begin(), gaps.end(), 0.0) / kSamples;
  double var = 0.0;
  for (const double g : gaps) var += (g - mean) * (g - mean);
  var /= kSamples;
  EXPECT_GT(var / (mean * mean), 1.3);
}

TEST(ArrivalProcess, DiurnalLongRunRateIsCalibrated) {
  DiurnalOptions options;
  options.rate_qps = 1'000.0;
  options.period_ms = 2'000.0;
  constexpr std::size_t kSamples = 50'000;
  const auto times = diurnal_arrivals(options, 21)->take(kSamples);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  // Measure over whole periods only: the horizon of the last partial
  // period biases the rate estimate.
  const double whole =
      std::floor(times.back() / options.period_ms) * options.period_ms;
  const auto in_whole = static_cast<double>(
      std::upper_bound(times.begin(), times.end(), whole) - times.begin());
  const double measured_qps = 1000.0 * in_whole / whole;
  EXPECT_NEAR(measured_qps, options.rate_qps, 0.1 * options.rate_qps);
}

TEST(ArrivalProcess, ClosedLoopPaperPresetIsFixedInterval) {
  const TrafficProfile profile = gnutella_traffic_2006();
  const auto arrivals = closed_loop_paper_arrivals(profile);
  const double interval = 1000.0 / profile.queries_per_second;
  for (std::uint64_t i = 1; i <= 32; ++i) {
    EXPECT_EQ(arrivals->next_ms(), interval * static_cast<double>(i));
  }
  EXPECT_EQ(arrivals->nominal_qps(), profile.queries_per_second);
}

// ---------------------------------------------------------------------------
// Zipf catalog + churn

TEST(ZipfCatalog, RankFrequencySlopeMatchesExponent) {
  ZipfCatalogOptions options;
  options.objects = 256;
  options.zipf_exponent = 0.8;
  options.seed = 3;
  const ZipfCatalog catalog(1'000, options);

  constexpr std::size_t kDraws = 400'000;
  std::vector<std::size_t> counts(options.objects, 0);
  Rng rng(1234);
  for (std::size_t i = 0; i < kDraws; ++i) {
    ++counts[catalog.sample(rng)];
  }
  // Least-squares slope of log(freq) vs log(rank+1) over the hot head
  // (every head rank has thousands of samples, so counting noise is
  // far below the tolerance band).
  constexpr std::size_t kHead = 32;
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t r = 0; r < kHead; ++r) {
    ASSERT_GT(counts[r], 0u);
    const double x = std::log(static_cast<double>(r + 1));
    const double y = std::log(static_cast<double>(counts[r]));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double slope =
      (kHead * sxy - sx * sy) / (kHead * sxx - sx * sx);
  EXPECT_NEAR(slope, -options.zipf_exponent, 0.08);
}

TEST(ZipfCatalog, SampleIsPureInRngStream) {
  ZipfCatalogOptions options;
  options.objects = 64;
  const ZipfCatalog catalog(500, options);
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(catalog.sample(a), catalog.sample(b));
}

TEST(ZipfCatalog, ChurnKeepsLiveCountConsistent) {
  ZipfCatalogOptions options;
  options.objects = 48;
  options.replicas_per_object = 3;
  options.live_fraction = 0.75;
  options.seed = 11;
  ZipfCatalog catalog(300, options);
  EXPECT_EQ(catalog.live_count(), 36u);  // ceil(0.75 * 48)

  for (int step = 0; step < 2'000; ++step) {
    catalog.churn_step(nullptr);
    std::size_t live = 0;
    for (ObjectId o = 0; o < 48; ++o) {
      live += catalog.is_live(o) ? 1 : 0;
    }
    ASSERT_EQ(catalog.live_count(), live);
  }
  const auto& counters = catalog.churn_counters();
  EXPECT_GT(counters.births, 0u);
  EXPECT_GT(counters.deaths, 0u);
  EXPECT_GT(counters.drifts, 0u);
  EXPECT_GT(counters.replica_changes,
            counters.births + counters.deaths + counters.drifts);
}

// The churn property contract: a counting-ABF table maintained purely by
// incremental waves stays superset-sound vs a fresh rebuild ALWAYS, and
// on a bounded-degree graph (no counter saturation) it is bit-identical
// — which makes maintained-vs-rebuilt routing query-equivalent.
TEST(ZipfCatalogChurn, CountingWavesStayRebuildEquivalent) {
  constexpr std::size_t kNodes = 200;
  const Graph g = make_cycle(kNodes);
  const CsrGraph csr = CsrGraph::from_graph(g);

  ZipfCatalogOptions zopts;
  zopts.objects = 64;
  zopts.replicas_per_object = 3;
  zopts.live_fraction = 0.8;
  zopts.seed = 17;
  ZipfCatalog zipf(kNodes, zopts);

  AbfOptions aopts;
  aopts.layout = TableLayout::kBlockedDelta;
  aopts.blocked_level_bits = 256;
  aopts.counting_maintenance = true;
  AbfRouter maintained(csr, zipf.catalog(), aopts);

  Rng query_rng(5);
  for (int round = 0; round < 12; ++round) {
    // A burst of birth/death/drift interleavings through the waves.
    for (int step = 0; step < 25; ++step) {
      zipf.churn_step(&maintained);
    }

    const AbfRouter rebuilt(csr, zipf.catalog(), aopts);
    const BlockedAbfTable& live = *maintained.blocked_table();
    const BlockedAbfTable& want = *rebuilt.blocked_table();

    // Degree-2 cycle: 2-hop contributor counts stay far below the
    // 4-bit counter cap, so the maintained table must be exactly the
    // rebuilt one (the below-saturation contract) — which subsumes the
    // always-true superset direction.
    std::size_t saturated = 0;
    for (std::uint32_t v = 0; v < kNodes; ++v) {
      for (std::size_t l = 0; l < maintained.depth(); ++l) {
        for (const std::uint8_t c :
             maintained.counting_table()->level(v, l).counters()) {
          saturated += c >= CountingBloomFilter::kSaturation;
        }
      }
    }
    ASSERT_EQ(saturated, 0u);
    for (std::uint32_t v = 0; v < kNodes; ++v) {
      for (std::size_t l = 0; l < live.depth(); ++l) {
        const std::uint64_t* lw = live.level_words(v, l);
        const std::uint64_t* ww = want.level_words(v, l);
        for (std::size_t w = 0; w < live.words_per_level(); ++w) {
          ASSERT_EQ(lw[w], ww[w])
              << "maintained != rebuilt at node " << v << " level " << l;
        }
      }
    }

    // Equal tables => equal routing. Spot-check with live-object queries
    // on lockstep RNG streams.
    for (int q = 0; q < 10; ++q) {
      const auto source =
          static_cast<NodeId>(query_rng.uniform_below(kNodes));
      const ObjectId object = zipf.sample(query_rng);
      Rng a = query_rng.split(q + 1);
      Rng b = a;
      const QueryResult ra = maintained.route(source, object, 32, a);
      const QueryResult rb = rebuilt.route(source, object, 32, b);
      ASSERT_EQ(ra.success, rb.success);
      ASSERT_EQ(ra.messages, rb.messages);
      ASSERT_EQ(ra.nodes_visited, rb.nodes_visited);
    }
  }
}

// ---------------------------------------------------------------------------
// Open-loop engine

bool aggregates_identical(const QueryAggregate& a, const QueryAggregate& b) {
  return a.queries() == b.queries() &&
         a.success_rate() == b.success_rate() &&
         a.mean_messages() == b.mean_messages() &&
         a.mean_duplicates() == b.mean_duplicates() &&
         a.mean_nodes_visited() == b.mean_nodes_visited() &&
         a.mean_replicas_found() == b.mean_replicas_found() &&
         a.hit_hops().mean() == b.hit_hops().mean() &&
         a.mean_messages_per_forwarder() == b.mean_messages_per_forwarder();
}

struct EngineFixture {
  EngineFixture() : graph(make_cycle(96)), csr(CsrGraph::from_graph(graph)) {
    ZipfCatalogOptions zopts;
    zopts.objects = 32;
    zopts.replicas_per_object = 3;
    zopts.seed = 7;
    zipf = std::make_unique<ZipfCatalog>(96, zopts);
    FloodOptions fopts;
    fopts.ttl = 6;
    engine = std::make_unique<FloodEngine>(csr, fopts);
  }

  Graph graph;
  CsrGraph csr;
  std::unique_ptr<ZipfCatalog> zipf;
  std::unique_ptr<FloodEngine> engine;
};

TEST(WorkloadEngine, OpenLoopAggregateMatchesDirectDriverBatch) {
  EngineFixture f;
  constexpr std::size_t kQueries = 200;
  constexpr std::uint64_t kSeed = 31;

  // Direct single-batch driver run: the reference fold.
  BatchQueryOptions batch;
  batch.queries = kQueries;
  batch.seed = kSeed;
  const ParallelQueryDriver driver(1);
  const QueryAggregate want =
      driver.run_batch(*f.engine, f.zipf->catalog(), batch);

  // Same stream admitted open-loop in wall-clock-dependent slices (tiny
  // admission cap forces many of them).
  DriverQueryBackend::Options bopts;
  bopts.seed = kSeed;
  bopts.threads = 1;
  DriverQueryBackend backend(*f.engine, f.zipf->catalog(), bopts);
  const auto arrivals = poisson_arrivals(50'000.0, 3);
  OpenLoopOptions oopts;
  oopts.max_admission_batch = 7;
  OpenLoopEngine open_loop(backend);
  const OpenLoopReport report = open_loop.run(*arrivals, kQueries, oopts);

  EXPECT_TRUE(aggregates_identical(want, report.aggregate));
  EXPECT_EQ(report.offered, kQueries);
  EXPECT_GT(report.slices, 1u);
}

TEST(WorkloadEngine, AggregateInvariantUnderThreadsSlicingAndRepeats) {
  EngineFixture f;
  constexpr std::size_t kQueries = 160;

  const auto run_once = [&](std::size_t threads, std::size_t admission,
                            double rate) {
    DriverQueryBackend::Options bopts;
    bopts.seed = 77;
    bopts.threads = threads;
    bopts.object_sampler = [&](Rng& rng) { return f.zipf->sample(rng); };
    DriverQueryBackend backend(*f.engine, f.zipf->catalog(), bopts);
    const auto arrivals = poisson_arrivals(rate, 13);
    OpenLoopOptions oopts;
    oopts.max_admission_batch = admission;
    OpenLoopEngine open_loop(backend);
    return open_loop.run(*arrivals, kQueries, oopts).aggregate;
  };

  const QueryAggregate reference = run_once(1, 1024, 20'000.0);
  // 1/2/8 driver threads; arrival rates and admission caps that force
  // completely different slicings; a same-everything repeat.
  EXPECT_TRUE(aggregates_identical(reference, run_once(1, 1024, 20'000.0)));
  EXPECT_TRUE(aggregates_identical(reference, run_once(2, 1024, 20'000.0)));
  EXPECT_TRUE(aggregates_identical(reference, run_once(8, 1024, 20'000.0)));
  EXPECT_TRUE(aggregates_identical(reference, run_once(2, 1, 20'000.0)));
  EXPECT_TRUE(aggregates_identical(reference, run_once(8, 3, 500'000.0)));
  EXPECT_TRUE(aggregates_identical(reference, run_once(1, 1024, 100.0)));
}

/// Deterministic fake backend: `seconds_per_query` of virtual service,
/// recording every slice. Lets the engine's timing/boundary math be
/// asserted exactly, independent of real wall clocks.
class FakeBackend final : public QueryBackend {
 public:
  explicit FakeBackend(double seconds_per_query)
      : seconds_per_query_(seconds_per_query) {}

  double run_slice(std::uint64_t first, std::size_t count,
                   QueryAggregate& aggregate) override {
    slices.emplace_back(first, count);
    for (std::size_t q = 0; q < count; ++q) {
      QueryResult r;
      r.success = true;
      r.messages = 1;
      aggregate.add(r);
    }
    return seconds_per_query_ * static_cast<double>(count);
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "fake";
  }

  std::vector<std::pair<std::uint64_t, std::size_t>> slices;

 private:
  double seconds_per_query_;
};

TEST(WorkloadEngine, ChurnBoundariesLandAtFixedStreamIndices) {
  FakeBackend backend(0.0005);
  std::vector<std::uint64_t> reached;
  OpenLoopOptions oopts;
  oopts.churn_every_queries = 10;
  oopts.max_admission_batch = 64;
  oopts.churn_hook = [&](std::uint64_t index) { reached.push_back(index); };
  const auto arrivals = poisson_arrivals(100'000.0, 8);
  OpenLoopEngine engine(backend);
  const OpenLoopReport report = engine.run(*arrivals, 95, oopts);

  // Hook fires at every interior multiple of 10 (not at 0, not past the
  // stream end), regardless of how admission sliced the queue.
  const std::vector<std::uint64_t> want = {10, 20, 30, 40, 50,
                                           60, 70, 80, 90};
  EXPECT_EQ(reached, want);
  // No slice crosses a boundary.
  for (const auto& [first, count] : backend.slices) {
    EXPECT_EQ(first / 10, (first + count - 1) / 10)
        << "slice [" << first << ", " << first + count << ") crosses a "
        << "churn boundary";
  }
  EXPECT_EQ(report.aggregate.queries(), 95u);
}

TEST(WorkloadEngine, VirtualClockAndSojournMathAreExact) {
  // Arrivals every 5 ms (closed-loop preset at 200 q/s), service 10 ms
  // per query: the queue grows without bound, makespan = first-arrival
  // idle + total service, and completed/offered -> 1/2.
  TrafficProfile profile;
  profile.queries_per_second = 200.0;
  const auto arrivals = closed_loop_paper_arrivals(profile);
  FakeBackend backend(0.010);
  OpenLoopEngine engine(backend);
  constexpr std::uint64_t kQueries = 64;
  const OpenLoopReport report = engine.run(*arrivals, kQueries, {});

  EXPECT_DOUBLE_EQ(report.horizon_ms, 5.0 * kQueries);
  EXPECT_NEAR(report.makespan_ms, 5.0 + 10.0 * kQueries, 1e-6);
  EXPECT_NEAR(report.completed_fraction(),
              (5.0 * kQueries) / (5.0 + 10.0 * kQueries), 1e-9);
  // The last query's sojourn is makespan - horizon, and the first query
  // of the final (batched) slice waited strictly longer — so the max is
  // bounded below by the lateness and above by the whole makespan.
  EXPECT_GE(report.max_sojourn_ms,
            report.makespan_ms - report.horizon_ms - 1e-6);
  EXPECT_LT(report.max_sojourn_ms, report.makespan_ms);
  EXPECT_GT(report.max_queue_depth, 1u);
  EXPECT_GT(report.p99_ms, report.p50_ms * 0.999);  // monotone percentiles
}

TEST(WorkloadEngine, FeedsSojournHistogramIntoCallerRegistry) {
  FakeBackend backend(0.001);
  obs::MetricsRegistry registry(1);
  OpenLoopOptions oopts;
  oopts.metrics = &registry;
  const auto arrivals = poisson_arrivals(10'000.0, 2);
  OpenLoopEngine engine(backend);
  const OpenLoopReport report = engine.run(*arrivals, 50, oopts);

  const obs::MetricsSnapshot snap = registry.snapshot();
  const obs::MetricValue* sojourn = snap.find("workload.sojourn_ms");
  ASSERT_NE(sojourn, nullptr);
  EXPECT_EQ(sojourn->kind, obs::MetricKind::kHistogram);
  std::uint64_t total = 0;
  for (const std::uint64_t b : sojourn->buckets) total += b;
  EXPECT_EQ(total, 50u);
  EXPECT_NE(snap.find("workload.queue_depth"), nullptr);
  EXPECT_GT(report.p999_ms, 0.0);
}

// ---------------------------------------------------------------------------
// Saturation search

TEST(Saturation, BracketsAKnownCapacity) {
  // Fake backend with exactly 1000 q/s of service capacity.
  FakeBackend backend(0.001);
  SaturationOptions options;
  options.start_qps = 125.0;
  options.probe_queries = 400;
  options.bisection_steps = 5;
  const SaturationReport report = find_saturation(backend, options);

  EXPECT_TRUE(report.bracketed);
  EXPECT_GT(report.saturation_qps, 500.0);
  EXPECT_LT(report.saturation_qps, 1'500.0);
  EXPECT_GE(report.probes.size(), 5u);
  // The at-saturation re-run carries the percentile report.
  EXPECT_EQ(report.at_saturation.offered, 400u);
  EXPECT_GT(report.at_saturation.p50_ms, 0.0);
  EXPECT_LE(report.at_saturation.p50_ms, report.at_saturation.p99_ms);
  EXPECT_LE(report.at_saturation.p99_ms, report.at_saturation.p999_ms);
}

TEST(Saturation, RampsDownWhenStartRateIsBeyondCapacity) {
  FakeBackend backend(0.01);  // 100 q/s capacity
  SaturationOptions options;
  options.start_qps = 10'000.0;
  options.probe_queries = 300;
  const SaturationReport report = find_saturation(backend, options);

  EXPECT_TRUE(report.bracketed);
  EXPECT_GT(report.saturation_qps, 0.0);
  EXPECT_LT(report.saturation_qps, 150.0);
}

// ---------------------------------------------------------------------------
// Closed-loop paper preset parity (zero drift)

TEST(WorkloadClosedLoop, FloodBatchBitIdenticalToDirectRun) {
  const ConstantLatency latency(400);
  const BuiltTopology topology =
      build_topology(TopologyKind::kGnutellaV04, latency, 51);

  FloodExperimentOptions options;
  options.queries = 120;
  options.runs = 2;
  options.ttl = 5;
  options.seed = 9;
  const QueryAggregate want = run_flood_batch(topology, options);
  const QueryAggregate got = closed_loop_flood_batch(topology, options);
  EXPECT_TRUE(aggregates_identical(want, got));

  // Holds on the two-tier topology too (the other run_flood_batch arm).
  const BuiltTopology two_tier =
      build_topology(TopologyKind::kGnutellaV06, latency, 52);
  const QueryAggregate want2 = run_flood_batch(two_tier, options);
  const QueryAggregate got2 = closed_loop_flood_batch(two_tier, options);
  EXPECT_TRUE(aggregates_identical(want2, got2));
}

TEST(WorkloadClosedLoop, TrafficComparisonInjectionIsZeroDrift) {
  // The exact seam bench_table2_traffic uses: run_traffic_comparison
  // with the workload closed-loop admission injected must reproduce the
  // direct path bit for bit (the pre-PR golden aggregates).
  TrafficComparisonOptions options;
  options.nodes = 500;
  options.queries = 80;
  options.runs = 1;
  options.seed = 4;
  const TrafficComparisonResult want = run_traffic_comparison(options);

  options.flood_batch = [](const BuiltTopology& topology,
                           const FloodExperimentOptions& flood) {
    return closed_loop_flood_batch(topology, flood);
  };
  const TrafficComparisonResult got = run_traffic_comparison(options);

  EXPECT_EQ(want.makalu_messages_per_query, got.makalu_messages_per_query);
  EXPECT_EQ(want.makalu_mean_degree, got.makalu_mean_degree);
  EXPECT_EQ(want.makalu.queries_per_second, got.makalu.queries_per_second);
  EXPECT_EQ(want.makalu.forward_fanout, got.makalu.forward_fanout);
  EXPECT_EQ(want.makalu.measured_outgoing_kbps,
            got.makalu.measured_outgoing_kbps);
  EXPECT_EQ(want.makalu.observed_success_rate,
            got.makalu.observed_success_rate);
}

}  // namespace
}  // namespace makalu::workload
