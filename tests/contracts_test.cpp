// Contract and edge-case coverage: the library promises to catch misuse
// loudly (MAKALU_EXPECTS aborts, loaders throw). These tests pin the
// precondition surface so refactors cannot silently weaken it, plus a few
// boundary behaviours not covered elsewhere.
#include <cstdlib>

#include <gtest/gtest.h>

#include "bloom/bloom_filter.hpp"
#include "graph/graph.hpp"
#include "net/latency_model.hpp"
#include "core/overlay_builder.hpp"
#include "proto/node.hpp"
#include "sim/event_queue.hpp"
#include "sim/replica_placement.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "test_util.hpp"

namespace makalu {
namespace {

TEST(Contracts, GraphOutOfRangeNodeAborts) {
  Graph g(3);
  EXPECT_DEATH((void)g.add_edge(0, 7), "precondition");
  EXPECT_DEATH((void)g.neighbors(9), "precondition");
  EXPECT_DEATH((void)g.degree(3), "precondition");
}

TEST(Contracts, CsrWeightsRequireWeightedGraph) {
  const CsrGraph csr = CsrGraph::from_graph(testing::make_path(3));
  EXPECT_DEATH((void)csr.weights(0), "precondition");
}

TEST(Contracts, BloomRejectsDegenerateParameters) {
  EXPECT_DEATH(BloomFilter({0, 4}), "precondition");
  EXPECT_DEATH(BloomFilter({64, 0}), "precondition");
  BloomFilter ok({64, 1});
  EXPECT_DEATH(ok.set_bit(64), "precondition");
}

TEST(Contracts, BloomMergeRequiresMatchingParameters) {
  BloomFilter a({128, 2});
  BloomFilter b({256, 2});
  EXPECT_DEATH(a.merge(b), "precondition");
}

TEST(Contracts, EventQueueRejectsPastAndNull) {
  EventQueue q;
  q.schedule(5.0, [] {});
  q.run();
  EXPECT_DEATH(q.schedule(1.0, [] {}), "precondition");  // now() == 5
  EXPECT_DEATH(q.schedule(10.0, nullptr), "precondition");
}

TEST(Contracts, CatalogBoundsChecked) {
  const ObjectCatalog catalog(10, 2, 0.1, 1);
  EXPECT_DEATH((void)catalog.holders(5), "precondition");
  EXPECT_DEATH((void)catalog.objects_on(99), "precondition");
  EXPECT_DEATH(ObjectCatalog(10, 1, 0.0, 1), "precondition");
  EXPECT_DEATH(ObjectCatalog(10, 1, 1.5, 1), "precondition");
}

TEST(Contracts, ProtocolNodeForbidsDuplicateAndSelfNeighbors) {
  proto::ProtocolNode node(0, 4, RatingWeights{});
  node.add_neighbor(1, 1.0, {});
  EXPECT_DEATH(node.add_neighbor(1, 1.0, {}), "precondition");
  EXPECT_DEATH(node.add_neighbor(0, 1.0, {}), "precondition");
}

TEST(Contracts, RngUniformBelowZeroAborts) {
  Rng rng(1);
  EXPECT_DEATH((void)rng.uniform_below(0), "precondition");
}

TEST(Contracts, PercentileRequiresSamples) {
  SampleStats empty;
  EXPECT_DEATH((void)empty.percentile(50.0), "precondition");
  SampleStats one;
  one.add(3.0);
  EXPECT_DEATH((void)one.percentile(101.0), "precondition");
}

// --- environment-variable fallbacks of the CLI -----------------------------

class CliEnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    unsetenv("MAKALU_N");
    unsetenv("MAKALU_SEED");
    unsetenv("MAKALU_RUNS");
    unsetenv("MAKALU_QUERIES");
  }
};

TEST_F(CliEnvTest, EnvProvidesDefaults) {
  setenv("MAKALU_N", "777", 1);
  setenv("MAKALU_SEED", "123", 1);
  const char* argv[] = {"prog"};
  CliOptions options(1, argv);
  EXPECT_EQ(options.nodes(10), 777u);
  EXPECT_EQ(options.seed(1), 123u);
  EXPECT_EQ(options.runs(4), 4u);  // not set: fallback
}

TEST_F(CliEnvTest, FlagBeatsEnvironment) {
  setenv("MAKALU_N", "777", 1);
  const char* argv[] = {"prog", "--n=55"};
  CliOptions options(2, argv);
  EXPECT_EQ(options.nodes(10), 55u);
}

// --- boundary behaviours -----------------------------------------------------

TEST(Boundaries, TwoNodeOverlay) {
  const EuclideanModel latency(2, 1);
  const MakaluOverlay overlay = OverlayBuilder().build(latency, 1);
  EXPECT_EQ(overlay.graph.edge_count(), 1u);
}

TEST(Boundaries, FullReplicationEverywhereSucceedsAtTtlZero) {
  const ObjectCatalog catalog(20, 1, 1.0, 3);
  EXPECT_EQ(catalog.replicas_per_object(), 20u);
  for (NodeId v = 0; v < 20; ++v) {
    EXPECT_TRUE(catalog.node_has_object(v, 0));
  }
}

TEST(Boundaries, ZipfSingleObject) {
  ZipfSampler zipf(1, 1.0);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf(rng), 0u);
}

TEST(Boundaries, HistogramSingleBin) {
  Histogram h(0.0, 1.0, 1);
  h.add(0.5);
  h.add(2.0);
  EXPECT_EQ(h.count_in_bin(0), 2u);
}

}  // namespace
}  // namespace makalu
