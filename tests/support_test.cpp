// Unit + property tests for src/support: RNG, stats, histogram, table,
// CLI parsing.
#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace makalu {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitStreamsAreIndependentOfParentContinuation) {
  Rng parent(7);
  Rng child = parent.split(1);
  const auto child_first = child();
  // Draining the parent further must not affect an already-split child.
  Rng parent2(7);
  Rng child2 = parent2.split(1);
  for (int i = 0; i < 100; ++i) parent2();
  EXPECT_EQ(child_first, child2());
}

TEST(Rng, UniformBelowRespectsBound) {
  Rng rng(5);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(rng.uniform_below(bound), bound);
    }
  }
}

TEST(Rng, UniformBelowCoversAllValues) {
  Rng rng(11);
  std::map<std::uint64_t, int> counts;
  constexpr int kDraws = 60000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform_below(6)];
  ASSERT_EQ(counts.size(), 6u);
  for (const auto& [value, count] : counts) {
    EXPECT_NEAR(static_cast<double>(count) / kDraws, 1.0 / 6.0, 0.02)
        << "value " << value;
  }
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformRealInHalfOpenUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(17);
  OnlineStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.exponential(4.0));
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
  EXPECT_GE(stats.min(), 0.0);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(19);
  OnlineStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, ParetoRespectsScaleFloor) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.pareto(3.0, 2.0), 3.0);
  }
}

class ZipfTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfTest, RankZeroIsMostPopularAndBoundsHold) {
  const double exponent = GetParam();
  ZipfSampler zipf(100, exponent);
  Rng rng(29);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 40000; ++i) {
    const std::size_t r = zipf(rng);
    ASSERT_LT(r, 100u);
    ++counts[r];
  }
  // Rank 0 strictly dominates mid and tail ranks.
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], 0);
  // Empirical head probability tracks the analytic Zipf mass within noise.
  double norm = 0.0;
  for (int d = 1; d <= 100; ++d) norm += std::pow(d, -exponent);
  const double expected_head = 1.0 / norm;
  EXPECT_NEAR(counts[0] / 40000.0, expected_head, 0.25 * expected_head);
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfTest,
                         ::testing::Values(0.6, 0.8, 1.0, 1.2, 2.0));

TEST(OnlineStats, KnownSequence) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  Rng rng(31);
  OnlineStats whole;
  OnlineStats left;
  OnlineStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal();
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmptySides) {
  OnlineStats empty;
  OnlineStats full;
  full.add(3.0);
  OnlineStats a = full;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  OnlineStats b = empty;
  b.merge(full);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(SampleStats, PercentilesInterpolate) {
  SampleStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 3.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(25.0), 2.0);
  EXPECT_DOUBLE_EQ(s.percentile(12.5), 1.5);
}

TEST(SampleStats, FractionAtMost) {
  SampleStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.fraction_at_most(2.0), 0.5);
  EXPECT_DOUBLE_EQ(s.fraction_at_most(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.fraction_at_most(4.0), 1.0);
}

TEST(SampleStats, PercentileCacheInvalidatesOnAdd) {
  SampleStats s;
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.median(), 1.0);
  s.add(9.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.9);   // bin 4
  h.add(-3.0);  // clamps to bin 0
  h.add(42.0);  // clamps to bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count_in_bin(0), 2u);
  EXPECT_EQ(h.count_in_bin(2), 1u);
  EXPECT_EQ(h.count_in_bin(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lower(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_width(), 2.0);
}

TEST(Table, AlignedOutputAndCsv) {
  Table t({"name", "value"});
  t.add_row({"alpha", Table::num(1.5)});
  t.add_row({"b", Table::integer(42)});
  std::ostringstream text;
  t.print(text);
  EXPECT_NE(text.str().find("alpha"), std::string::npos);
  EXPECT_NE(text.str().find("1.50"), std::string::npos);
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_NE(csv.str().find("name,value"), std::string::npos);
  EXPECT_NE(csv.str().find("b,42"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::num(3.14159, 3), "3.142");
  EXPECT_EQ(Table::integer(-7), "-7");
  EXPECT_EQ(Table::percent(0.356, 1), "35.6%");
}

TEST(Table, CsvQuotesCommasPerRfc4180) {
  Table t({"mechanism", "msgs"});
  t.add_row({"gossip p=0.25, past hop 4", "12.5"});
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_NE(csv.str().find("\"gossip p=0.25, past hop 4\",12.5"),
            std::string::npos);
}

TEST(Table, CsvDoublesEmbeddedQuotes) {
  Table t({"label", "value"});
  t.add_row({"the \"giant\" component", "0.99"});
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_NE(csv.str().find("\"the \"\"giant\"\" component\",0.99"),
            std::string::npos);
}

TEST(Table, CsvQuotesLineBreaks) {
  Table t({"a", "b"});
  t.add_row({"two\nlines", "plain"});
  std::ostringstream csv;
  t.print_csv(csv);
  // Field with a newline is quoted; the unremarkable field stays bare.
  EXPECT_NE(csv.str().find("\"two\nlines\",plain"), std::string::npos);
}

TEST(Table, CsvLeavesPlainFieldsUnquoted) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1.50"});
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_EQ(csv.str(), "name,value\nalpha,1.50\n");
}

TEST(Cli, ParsesCommonFlags) {
  const char* argv[] = {"prog", "--n=500", "--runs=3", "--paper",
                        "--seed=99"};
  CliOptions options(5, argv);
  EXPECT_EQ(options.nodes(100), 500u);
  EXPECT_EQ(options.runs(1), 3u);
  EXPECT_EQ(options.queries(77), 77u);  // falls back
  EXPECT_TRUE(options.paper_scale());
  EXPECT_FALSE(options.csv());
  EXPECT_EQ(options.seed(1), 99u);
}

TEST(Cli, RejectsUnknownFlag) {
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_THROW(CliOptions(2, argv), std::invalid_argument);
}

TEST(Cli, AcceptsRegisteredCustomFlag) {
  const char* argv[] = {"prog", "--depth=5"};
  CliOptions options(2, argv, {"depth"});
  EXPECT_EQ(options.get_int("depth", 3), 5);
  EXPECT_EQ(options.get_int("missing-but-registered", 3), 3);
}

TEST(Cli, GetDouble) {
  const char* argv[] = {"prog", "--ratio=0.25"};
  CliOptions options(2, argv, {"ratio"});
  EXPECT_DOUBLE_EQ(options.get_double("ratio", 1.0), 0.25);
}

TEST(Cli, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "positional"};
  EXPECT_THROW(CliOptions(2, argv), std::invalid_argument);
}

TEST(Cli, AcceptsSpaceSeparatedValues) {
  const char* argv[] = {"prog", "--json", "out.json", "--n", "500"};
  CliOptions options(5, argv);
  EXPECT_EQ(options.json_path(), "out.json");
  EXPECT_EQ(options.nodes(100), 500u);
}

TEST(Cli, JsonPathDefaultsEmpty) {
  const char* argv[] = {"prog"};
  CliOptions options(1, argv);
  EXPECT_TRUE(options.json_path().empty());
}

TEST(Cli, SpaceSeparatedValueDoesNotEatNextFlag) {
  // A bare boolean flag followed by another flag must not consume it.
  const char* argv[] = {"prog", "--paper", "--n=500"};
  CliOptions options(3, argv);
  EXPECT_TRUE(options.paper_scale());
  EXPECT_EQ(options.nodes(100), 500u);
}

}  // namespace
}  // namespace makalu
