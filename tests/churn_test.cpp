// Tests for the session-based churn simulator and content churn
// (dynamic catalogs + incremental ABF updates).
#include <gtest/gtest.h>

#include "net/latency_model.hpp"
#include "search/abf_search.hpp"
#include "search/churn.hpp"
#include "test_util.hpp"

namespace makalu {
namespace {

TEST(Churn, ReportShapes) {
  const EuclideanModel latency(400, 3);
  const OverlayBuilder builder;
  ChurnOptions options;
  options.duration_ms = 20'000.0;
  options.sample_interval_ms = 2'000.0;
  options.mean_session_ms = 10'000.0;
  options.mean_downtime_ms = 4'000.0;
  options.seed = 5;
  const ChurnReport report = simulate_churn(builder, latency, options);
  ASSERT_GE(report.samples.size(), 9u);
  EXPECT_GT(report.departures, 0u);
  EXPECT_GT(report.arrivals, 0u);
  // Samples lie on the grid, in order.
  for (std::size_t i = 1; i < report.samples.size(); ++i) {
    EXPECT_GT(report.samples[i].time_ms, report.samples[i - 1].time_ms);
  }
  for (const auto& s : report.samples) {
    EXPECT_LE(s.online, 400u);
    EXPECT_GE(s.giant_fraction, 0.0);
    EXPECT_LE(s.giant_fraction, 1.0);
  }
}

TEST(Churn, Deterministic) {
  const EuclideanModel latency(300, 7);
  const OverlayBuilder builder;
  ChurnOptions options;
  options.duration_ms = 10'000.0;
  options.seed = 9;
  const ChurnReport a = simulate_churn(builder, latency, options);
  const ChurnReport b = simulate_churn(builder, latency, options);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  EXPECT_EQ(a.departures, b.departures);
  EXPECT_EQ(a.arrivals, b.arrivals);
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].online, b.samples[i].online);
    EXPECT_EQ(a.samples[i].online_components,
              b.samples[i].online_components);
  }
}

TEST(Churn, OverlayStaysOverwhelminglyConnected) {
  // Moderate churn (mean 60s sessions, 20s downtime, maintenance every
  // 5s): the overlay's online giant component should stay ~everyone.
  const EuclideanModel latency(800, 11);
  const OverlayBuilder builder;
  ChurnOptions options;
  options.duration_ms = 60'000.0;
  options.seed = 13;
  const ChurnReport report = simulate_churn(builder, latency, options);
  EXPECT_GT(report.worst_giant_fraction(), 0.97);
  // Mean degree holds up: join/maintenance keep refilling.
  double worst_degree = 1e9;
  for (const auto& s : report.samples) {
    worst_degree = std::min(worst_degree, s.mean_degree);
  }
  EXPECT_GT(worst_degree, 6.0);
}

TEST(Churn, HarsherChurnDegradesGracefully) {
  const EuclideanModel latency(500, 17);
  const OverlayBuilder builder;
  ChurnOptions gentle;
  gentle.duration_ms = 30'000.0;
  gentle.seed = 21;
  ChurnOptions harsh = gentle;
  harsh.mean_session_ms = 8'000.0;  // 7.5x shorter sessions
  const auto gentle_report = simulate_churn(builder, latency, gentle);
  const auto harsh_report = simulate_churn(builder, latency, harsh);
  EXPECT_GT(harsh_report.departures, 2 * gentle_report.departures);
  // Even under harsh churn the giant component holds.
  EXPECT_GT(harsh_report.worst_giant_fraction(), 0.9);
}

TEST(ContentChurn, CatalogAddRemove) {
  ObjectCatalog catalog(50, 4, 0.1, 3);
  // Pick a node that does not yet hold object 0.
  NodeId node = kInvalidNode;
  for (NodeId v = 0; v < 50; ++v) {
    if (!catalog.node_has_object(v, 0)) {
      node = v;
      break;
    }
  }
  ASSERT_NE(node, kInvalidNode);
  catalog.add_replica(0, node);
  EXPECT_TRUE(catalog.node_has_object(node, 0));
  const auto holders_after_add = catalog.holders(0).size();
  catalog.add_replica(0, node);  // idempotent
  EXPECT_EQ(catalog.holders(0).size(), holders_after_add);
  EXPECT_TRUE(catalog.remove_replica(0, node));
  EXPECT_FALSE(catalog.node_has_object(node, 0));
  EXPECT_FALSE(catalog.remove_replica(0, node));
}

TEST(ContentChurn, AbfNotifyInsertMakesObjectRoutable) {
  const Graph g = testing::make_path(5);
  const CsrGraph csr = CsrGraph::from_graph(g);
  // Pin object 1's original replica to node 0 so the query source (node
  // 2) is exactly 2 hops from both the old replica (0) and the new one
  // (4) — either greedy target costs 2 messages.
  auto pinned_catalog = [] {
    for (std::uint64_t seed = 0;; ++seed) {
      ObjectCatalog candidate(5, 2, 1.0 / 5.0, seed);
      if (candidate.holders(1).front() == 0) return candidate;
    }
  };
  ObjectCatalog catalog = pinned_catalog();
  AbfRouter router(csr, catalog, AbfOptions{});
  // Publish object 1 on node 4 dynamically.
  catalog.add_replica(1, 4);
  router.notify_insert(4, 1);
  // The advertisement chain must now see it at the right levels: node 1's
  // adv for neighbor 2 should match at level 2 (4 is 2 hops past 2).
  const std::uint64_t key = ObjectCatalog::object_key(1);
  const auto row1 = csr.neighbors(1);  // {0, 2}
  ASSERT_EQ(row1[1], 2u);
  EXPECT_TRUE(router.advertisement(1, 1).level(2).maybe_contains(key));
  // And routing from node 2 reaches it greedily.
  Rng rng(2);
  const auto r = router.route(2, 1, 10, rng);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.messages, 2u);
}

TEST(ContentChurn, NotifyInsertEquivalentToRebuild) {
  const EuclideanModel latency(300, 23);
  const auto overlay = OverlayBuilder().build(latency, 3);
  const CsrGraph csr = CsrGraph::from_graph(overlay.graph);
  ObjectCatalog catalog(300, 3, 0.02, 5);

  AbfRouter incremental(csr, catalog, AbfOptions{});
  catalog.add_replica(2, 42);
  catalog.add_replica(2, 99);
  incremental.notify_insert(42, 2);
  incremental.notify_insert(99, 2);

  AbfRouter rebuilt(csr, catalog, AbfOptions{});

  // Incremental updates must produce exactly the filters a from-scratch
  // build produces (the wave mirrors the level recursion).
  const std::uint64_t key = ObjectCatalog::object_key(2);
  for (NodeId u = 0; u < 300; ++u) {
    for (std::size_t i = 0; i < csr.degree(u); ++i) {
      for (std::size_t level = 0; level < 3; ++level) {
        EXPECT_EQ(
            incremental.advertisement(u, i).level(level).maybe_contains(key),
            rebuilt.advertisement(u, i).level(level).maybe_contains(key))
            << "node " << u << " nbr " << i << " level " << level;
      }
    }
  }
}

TEST(ContentChurn, RebuildDropsRemovedContent) {
  const Graph g = testing::make_path(4);
  const CsrGraph csr = CsrGraph::from_graph(g);
  ObjectCatalog catalog(4, 1, 1.0 / 4.0, 7);
  const NodeId holder = catalog.holders(0).front();
  AbfRouter router(csr, catalog, AbfOptions{});
  const std::uint64_t key = ObjectCatalog::object_key(0);
  // Some advertisement sees the key initially.
  bool seen_before = false;
  for (NodeId u = 0; u < 4; ++u) {
    for (std::size_t i = 0; i < csr.degree(u); ++i) {
      for (std::size_t level = 0; level < 3; ++level) {
        seen_before |=
            router.advertisement(u, i).level(level).maybe_contains(key);
      }
    }
  }
  EXPECT_TRUE(seen_before);
  ASSERT_TRUE(catalog.remove_replica(0, holder));
  router.rebuild();
  for (NodeId u = 0; u < 4; ++u) {
    for (std::size_t i = 0; i < csr.degree(u); ++i) {
      for (std::size_t level = 0; level < 3; ++level) {
        EXPECT_FALSE(
            router.advertisement(u, i).level(level).maybe_contains(key));
      }
    }
  }
}

}  // namespace
}  // namespace makalu
