// Tests for the simulation substrate: replica placement, failure
// injection, the event queue, and query aggregation.
#include <gtest/gtest.h>

#include "sim/event_queue.hpp"
#include "sim/failure.hpp"
#include "sim/query_stats.hpp"
#include "sim/replica_placement.hpp"
#include "test_util.hpp"

namespace makalu {
namespace {

TEST(ObjectCatalog, ReplicaCountsMatchRatio) {
  const ObjectCatalog catalog(1000, 20, 0.01, 5);
  EXPECT_EQ(catalog.object_count(), 20u);
  EXPECT_EQ(catalog.replicas_per_object(), 10u);
  for (ObjectId obj = 0; obj < 20; ++obj) {
    EXPECT_EQ(catalog.holders(obj).size(), 10u);
  }
}

TEST(ObjectCatalog, AtLeastOneReplica) {
  const ObjectCatalog catalog(100, 5, 0.0001, 7);
  EXPECT_EQ(catalog.replicas_per_object(), 1u);
}

TEST(ObjectCatalog, HoldersAreDistinctAndConsistent) {
  const ObjectCatalog catalog(500, 30, 0.02, 9);
  for (ObjectId obj = 0; obj < 30; ++obj) {
    const auto& holders = catalog.holders(obj);
    for (std::size_t i = 1; i < holders.size(); ++i) {
      EXPECT_LT(holders[i - 1], holders[i]);  // sorted and distinct
    }
    for (const NodeId node : holders) {
      EXPECT_TRUE(catalog.node_has_object(node, obj));
    }
  }
  // Reverse index consistent.
  std::size_t total_from_nodes = 0;
  for (NodeId node = 0; node < 500; ++node) {
    for (const ObjectId obj : catalog.objects_on(node)) {
      EXPECT_TRUE(catalog.node_has_object(node, obj));
      ++total_from_nodes;
    }
  }
  EXPECT_EQ(total_from_nodes, 30u * catalog.replicas_per_object());
}

TEST(ObjectCatalog, PlacementRoughlyUniform) {
  const ObjectCatalog catalog(200, 400, 0.05, 11);  // 10 replicas each
  std::vector<std::size_t> load(200, 0);
  for (ObjectId obj = 0; obj < 400; ++obj) {
    for (const NodeId n : catalog.holders(obj)) ++load[n];
  }
  // 4000 replicas over 200 nodes → mean 20; no node should be wildly off.
  for (const auto l : load) {
    EXPECT_GT(l, 2u);
    EXPECT_LT(l, 60u);
  }
}

TEST(ObjectCatalog, KeysAreStable) {
  EXPECT_EQ(ObjectCatalog::object_key(5), ObjectCatalog::object_key(5));
  EXPECT_NE(ObjectCatalog::object_key(5), ObjectCatalog::object_key(6));
}

TEST(Failure, TopDegreeSelectsHubs) {
  const Graph g = testing::make_star(9);  // hub 0 has degree 9
  const auto failed = select_top_degree_failures(g, 0.1);
  EXPECT_TRUE(failed[0]);
  EXPECT_EQ(std::count(failed.begin(), failed.end(), true), 1);
}

TEST(Failure, TopDegreeTieBreakDeterministic) {
  const Graph g = testing::make_cycle(10);  // all degree 2
  const auto a = select_top_degree_failures(g, 0.3);
  const auto b = select_top_degree_failures(g, 0.3);
  EXPECT_EQ(a, b);
  EXPECT_EQ(std::count(a.begin(), a.end(), true), 3);
  EXPECT_TRUE(a[0] && a[1] && a[2]);  // id order on ties
}

TEST(Failure, RandomSelectionCount) {
  Rng rng(3);
  const auto failed = select_random_failures(1000, 0.25, rng);
  EXPECT_EQ(std::count(failed.begin(), failed.end(), true), 250);
}

TEST(Failure, ApplyProducesSurvivorSubgraph) {
  const Graph g = testing::make_path(6);
  auto failed = select_top_degree_failures(g, 0.0);
  EXPECT_EQ(std::count(failed.begin(), failed.end(), true), 0);
  failed[0] = true;
  std::vector<NodeId> mapping;
  const Graph survivors = apply_failures(g, failed, &mapping);
  EXPECT_EQ(survivors.node_count(), 5u);
  EXPECT_EQ(mapping[0], kInvalidNode);
}

TEST(Failure, IdCompactionRoundTripsSurvivorEdges) {
  // The old->new mapping must be dense and order-preserving over
  // survivors, and translating every compacted edge back through its
  // inverse must recover exactly the survivor-survivor edges of the
  // original graph — no edges invented, none dropped.
  Graph g = testing::make_cycle(40);
  Rng edge_rng(51);
  for (int i = 0; i < 80; ++i) {
    const auto u = static_cast<NodeId>(edge_rng.uniform_below(40));
    const auto v = static_cast<NodeId>(edge_rng.uniform_below(40));
    if (u != v) g.add_edge(u, v);
  }
  Rng fail_rng(52);
  const auto failed = select_random_failures(g.node_count(), 0.3, fail_rng);

  std::vector<NodeId> old_to_new;
  const Graph compact = apply_failures(g, failed, &old_to_new);

  // Mapping shape: failed -> kInvalidNode; survivors -> 0..k-1 in id order.
  std::vector<NodeId> new_to_old;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    if (failed[u]) {
      EXPECT_EQ(old_to_new[u], kInvalidNode);
      continue;
    }
    ASSERT_EQ(old_to_new[u], static_cast<NodeId>(new_to_old.size()));
    new_to_old.push_back(u);
  }
  ASSERT_EQ(compact.node_count(), new_to_old.size());

  // Every compacted edge is a survivor edge of the original...
  for (NodeId a = 0; a < compact.node_count(); ++a) {
    for (const NodeId b : compact.neighbors(a)) {
      EXPECT_TRUE(g.has_edge(new_to_old[a], new_to_old[b]))
          << a << "-" << b;
    }
  }
  // ...and the counts match the brute-force survivor edge census, so
  // nothing was dropped either.
  std::size_t survivor_edges = 0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    if (failed[u]) continue;
    for (const NodeId v : g.neighbors(u)) {
      if (v > u && !failed[v]) ++survivor_edges;
    }
  }
  EXPECT_EQ(compact.edge_count(), survivor_edges);
}

TEST(Failure, CompactionWithNoFailuresIsIdentity) {
  const Graph g = testing::make_barbell(5);
  const std::vector<bool> failed(g.node_count(), false);
  std::vector<NodeId> mapping;
  const Graph same = apply_failures(g, failed, &mapping);
  ASSERT_EQ(same.node_count(), g.node_count());
  EXPECT_EQ(same.edge_count(), g.edge_count());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    EXPECT_EQ(mapping[u], u);
    for (const NodeId v : g.neighbors(u)) EXPECT_TRUE(same.has_edge(u, v));
  }
}

TEST(Failure, CompactionWithAllFailedIsEmpty) {
  const Graph g = testing::make_complete(4);
  const std::vector<bool> failed(g.node_count(), true);
  std::vector<NodeId> mapping;
  const Graph none = apply_failures(g, failed, &mapping);
  EXPECT_EQ(none.node_count(), 0u);
  EXPECT_EQ(none.edge_count(), 0u);
  for (const NodeId m : mapping) EXPECT_EQ(m, kInvalidNode);
}

TEST(EventQueue, RunsInTimestampOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
  EXPECT_EQ(q.processed(), 3u);
}

TEST(EventQueue, FifoOnEqualTimestamps) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, HandlersCanSchedule) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] {
    ++fired;
    q.schedule_in(1.0, [&] { ++fired; });
  });
  q.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueue, RunUntilHorizonLeavesFutureEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] { ++fired; });
  q.schedule(5.0, [&] { ++fired; });
  q.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  q.run();
  EXPECT_EQ(fired, 2);
}

TEST(QueryAggregate, AggregatesCorrectly) {
  QueryAggregate agg;
  QueryResult success;
  success.success = true;
  success.messages = 10;
  success.duplicates = 2;
  success.nodes_visited = 8;
  success.first_hit_hop = 3;
  success.replicas_found = 1;
  success.forwarders = 5;
  QueryResult failure;
  failure.messages = 20;
  failure.forwarders = 10;
  agg.add(success);
  agg.add(failure);
  EXPECT_EQ(agg.queries(), 2u);
  EXPECT_DOUBLE_EQ(agg.success_rate(), 0.5);
  EXPECT_DOUBLE_EQ(agg.mean_messages(), 15.0);
  EXPECT_DOUBLE_EQ(agg.duplicate_fraction(), 2.0 / 30.0);
  EXPECT_DOUBLE_EQ(agg.mean_messages_per_forwarder(), 2.0);
  EXPECT_DOUBLE_EQ(agg.hit_hops().median(), 3.0);
}

TEST(QueryAggregate, EmptyIsSafe) {
  const QueryAggregate agg;
  EXPECT_DOUBLE_EQ(agg.success_rate(), 0.0);
  EXPECT_DOUBLE_EQ(agg.duplicate_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(agg.mean_messages_per_forwarder(), 0.0);
}

}  // namespace
}  // namespace makalu
