// Tests for the message-level protocol layer: handshakes, management
// prunes, the emergent overlay, query flooding with reverse-path hits,
// and traffic accounting.
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/metrics.hpp"
#include "proto/network.hpp"
#include "spectral/laplacian.hpp"
#include "test_util.hpp"

namespace makalu::proto {
namespace {

TEST(ProtoMessage, WireSizesIncludeHeader) {
  Message connect{0, 1, ConnectRequest{}};
  EXPECT_EQ(wire_size(connect), 23u);
  Message accept{1, 0, ConnectAccept{{2, 3, 4}}};
  EXPECT_EQ(wire_size(accept), 23u + 2u + 18u);
  Message query{0, 1, Query{7, 1, 4}};
  EXPECT_EQ(wire_size(query), 23u + 83u);
  EXPECT_STREQ(payload_name(query.payload), "query");
  EXPECT_STREQ(payload_name(accept.payload), "connect-accept");
  // Keepalives are header-only descriptors, like the original Gnutella
  // Ping/Pong minimum.
  Message ping{0, 1, Ping{}};
  Message pong{1, 0, Pong{}};
  EXPECT_EQ(wire_size(ping), 23u);
  EXPECT_EQ(wire_size(pong), 23u);
}

TEST(ProtoMessage, EveryPayloadTypeHasANameAndStableIndex) {
  // One sample per variant alternative, in variant order. A new payload
  // type must be appended (never inserted) so per-type counters stay
  // comparable across versions — this array is the regression guard.
  const Payload samples[] = {ConnectRequest{}, ConnectAccept{},
                             ConnectReject{},  Disconnect{},
                             TableUpdate{},    WalkProbe{},
                             CandidateReply{}, Query{},
                             QueryHit{},       Ping{},
                             Pong{}};
  static_assert(kPayloadTypes == 11);
  ASSERT_EQ(std::size(samples), kPayloadTypes);
  const char* expected[] = {"connect",        "connect-accept",
                            "connect-reject", "disconnect",
                            "table-update",   "walk-probe",
                            "candidate-reply", "query",
                            "query-hit",      "ping",
                            "pong"};
  for (std::size_t i = 0; i < kPayloadTypes; ++i) {
    EXPECT_EQ(payload_index(samples[i]), i);
    EXPECT_STREQ(payload_name(samples[i]), expected[i]);
    // Every payload costs at least the descriptor header.
    EXPECT_GE(wire_size(Message{0, 1, samples[i]}), 23u);
  }
}

TEST(ProtoNode, NeighborBookkeeping) {
  ProtocolNode node(0, 5, RatingWeights{});
  node.add_neighbor(1, 2.0, {0, 3});
  node.add_neighbor(2, 4.0, {0});
  EXPECT_EQ(node.degree(), 2u);
  EXPECT_TRUE(node.has_neighbor(1));
  EXPECT_FALSE(node.has_neighbor(3));
  const auto table = node.neighbor_table();
  EXPECT_EQ(table.size(), 2u);
  EXPECT_TRUE(node.remove_neighbor(1));
  EXPECT_FALSE(node.remove_neighbor(1));
  EXPECT_EQ(node.degree(), 1u);
}

TEST(ProtoNode, LocalRatingPrefersUniqueConnectivity) {
  // Node 0 with neighbors 1 (table {0,5,6}: two unique) and 2 (table
  // {0,1}: nothing unique — 1 is direct). Equal latency isolates the
  // connectivity term.
  ProtocolNode node(0, 5, RatingWeights{1.0, 0.0});
  node.add_neighbor(1, 1.0, {0, 5, 6});
  node.add_neighbor(2, 1.0, {0, 1});
  const auto ratings = node.rate_locally();
  ASSERT_EQ(ratings.size(), 2u);
  const auto& r1 = ratings[0].peer == 1 ? ratings[0] : ratings[1];
  const auto& r2 = ratings[0].peer == 2 ? ratings[0] : ratings[1];
  EXPECT_GT(r1.score, r2.score);
  EXPECT_EQ(node.worst_neighbor(0), 2u);
}

TEST(ProtoNode, ProvisionalCandidateIsRated) {
  ProtocolNode node(0, 5, RatingWeights{});
  node.add_neighbor(1, 1.0, {0, 5});
  NeighborState candidate;
  candidate.peer = 9;
  candidate.latency_ms = 1.0;
  candidate.table = {7, 8};
  const auto ratings = node.rate_locally(&candidate);
  ASSERT_EQ(ratings.size(), 2u);
  EXPECT_TRUE(ratings[1].is_candidate);
  EXPECT_EQ(ratings[1].peer, 9u);
}

TEST(ProtoNode, QueryCacheAndBreadcrumbs) {
  ProtocolNode node(3, 5, RatingWeights{});
  EXPECT_TRUE(node.remember_query(42, 7));
  EXPECT_FALSE(node.remember_query(42, 8));  // duplicate
  ASSERT_TRUE(node.breadcrumb(42).has_value());
  EXPECT_EQ(*node.breadcrumb(42), 7u);
  EXPECT_FALSE(node.breadcrumb(43).has_value());
}

class ProtoNetworkTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kNodes = 600;

  static const testing::ConstantLatency& latency() {
    static const testing::ConstantLatency model(kNodes, 5.0);
    return model;
  }
};

TEST_F(ProtoNetworkTest, BootstrapProducesConnectedOverlay) {
  ProtocolNetwork network(latency(), nullptr, ProtocolOptions{}, 7);
  const double converged_at = network.bootstrap_all();
  EXPECT_GT(converged_at, 0.0);
  const Graph overlay = network.overlay_snapshot();
  const CsrGraph csr = CsrGraph::from_graph(overlay);
  const auto comps = connected_components(csr);
  // Message-level convergence is softer than the direct builder: accept a
  // couple of stragglers but require a dominating giant component.
  EXPECT_GE(static_cast<double>(comps.largest_size()),
            0.99 * static_cast<double>(kNodes));
  const auto degrees = degree_stats(csr);
  EXPECT_GT(degrees.mean, 6.0);
  EXPECT_LE(degrees.max, 14u);  // capacity cap (6..13) honored
}

TEST_F(ProtoNetworkTest, CapacitiesAreEnforced) {
  ProtocolNetwork network(latency(), nullptr, ProtocolOptions{}, 11);
  network.bootstrap_all();
  for (NodeId v = 0; v < kNodes; ++v) {
    EXPECT_LE(network.node(v).degree(), network.node(v).capacity()) << v;
  }
}

TEST_F(ProtoNetworkTest, EmergentOverlayIsExpanderGrade) {
  // The distributed protocol must reproduce the direct builder's headline
  // property: algebraic connectivity far above power-law territory.
  const EuclideanModel euclid(800, 13);
  ProtocolNetwork network(euclid, nullptr, ProtocolOptions{}, 13);
  network.bootstrap_all();
  const Graph overlay = network.overlay_snapshot();
  const CsrGraph csr = CsrGraph::from_graph(overlay);
  const auto comps = connected_components(csr);
  ASSERT_GE(static_cast<double>(comps.largest_size()), 0.99 * 800);
  // Measure lambda_1 on the giant component.
  std::vector<bool> drop(overlay.node_count());
  std::size_t giant_id = 0;
  {
    std::vector<std::size_t> sizes(comps.count, 0);
    for (const auto c : comps.component_of) ++sizes[c];
    giant_id = static_cast<std::size_t>(
        std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
  }
  for (NodeId v = 0; v < overlay.node_count(); ++v) {
    drop[v] = comps.component_of[v] != giant_id;
  }
  const Graph giant = overlay.remove_nodes(drop);
  EXPECT_GT(algebraic_connectivity(CsrGraph::from_graph(giant)), 1.0);
}

TEST_F(ProtoNetworkTest, TrafficAccountingIsConsistent) {
  ProtocolNetwork network(latency(), nullptr, ProtocolOptions{}, 17);
  network.bootstrap_all();
  const auto& traffic = network.traffic();
  std::uint64_t count_sum = 0;
  std::uint64_t bytes_sum = 0;
  for (std::size_t t = 0; t < kPayloadTypes; ++t) {
    count_sum += traffic.count[t];
    bytes_sum += traffic.bytes[t];
  }
  EXPECT_EQ(count_sum, traffic.total_messages);
  EXPECT_EQ(bytes_sum, traffic.total_bytes);
  EXPECT_GT(traffic.total_messages, kNodes);  // at least the handshakes
  // Each message costs at least the header.
  EXPECT_GE(traffic.total_bytes, 23 * traffic.total_messages);
}

TEST_F(ProtoNetworkTest, PerNodeBytesSumToTotals) {
  ProtocolNetwork network(latency(), nullptr, ProtocolOptions{}, 41);
  network.bootstrap_all();
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  for (NodeId v = 0; v < kNodes; ++v) {
    sent += network.bytes_sent_by(v);
    received += network.bytes_received_by(v);
  }
  EXPECT_EQ(sent, network.traffic().total_bytes);
  EXPECT_EQ(received, network.traffic().total_bytes);
}

TEST_F(ProtoNetworkTest, QueryFloodsAndHitsRouteBack) {
  const ObjectCatalog catalog(kNodes, 10, 0.02, 3);
  ProtocolNetwork network(latency(), &catalog, ProtocolOptions{}, 19);
  network.bootstrap_all();
  std::size_t successes = 0;
  Rng rng(5);
  for (int q = 0; q < 20; ++q) {
    const auto source = static_cast<NodeId>(rng.uniform_below(kNodes));
    const auto object = static_cast<ObjectId>(rng.uniform_below(10));
    const QueryOutcome outcome = network.run_query(source, object, 4);
    successes += outcome.success;
    if (outcome.success && outcome.response_ms > 0) {
      // Response time is at least one round trip at 5 ms per hop.
      EXPECT_GE(outcome.response_ms, 10.0 - 1e-9);
      EXPECT_GT(outcome.hits, 0u);
      EXPECT_GT(outcome.hit_messages, 0u);
    }
    EXPECT_GT(outcome.query_messages, 0u);
  }
  // 2% replication with TTL-4 floods on a ~600-node overlay: essentially
  // everything resolves.
  EXPECT_GE(successes, 18u);
}

TEST_F(ProtoNetworkTest, SourceHoldingObjectAnswersInstantly) {
  const ObjectCatalog catalog(kNodes, 1, 0.05, 7);
  ProtocolNetwork network(latency(), &catalog, ProtocolOptions{}, 23);
  network.bootstrap_all();
  const NodeId holder = catalog.holders(0).front();
  const QueryOutcome outcome = network.run_query(holder, 0, 4);
  EXPECT_TRUE(outcome.success);
  EXPECT_DOUBLE_EQ(outcome.response_ms, 0.0);
}

TEST_F(ProtoNetworkTest, DeterministicForSeed) {
  auto run = [&](std::uint64_t seed) {
    ProtocolNetwork network(latency(), nullptr, ProtocolOptions{}, seed);
    network.bootstrap_all();
    return std::make_pair(network.traffic().total_messages,
                          network.overlay_snapshot().edge_count());
  };
  EXPECT_EQ(run(29), run(29));
  EXPECT_NE(run(29), run(31));
}

TEST_F(ProtoNetworkTest, TtlZeroQueriesDoNotPropagate) {
  const ObjectCatalog catalog(kNodes, 1, 0.01, 9);
  ProtocolNetwork network(latency(), &catalog, ProtocolOptions{}, 37);
  network.bootstrap_all();
  // A source that does not hold the object fails immediately at TTL 0.
  NodeId source = 0;
  while (catalog.node_has_object(source, 0)) ++source;
  const QueryOutcome outcome = network.run_query(source, 0, 0);
  EXPECT_FALSE(outcome.success);
  EXPECT_EQ(outcome.query_messages, 0u);
}

}  // namespace
}  // namespace makalu::proto
