// Soundness suite for the counting-Bloom-maintained ABF table
// (bloom/counting_abf_table): every incremental op — content insert and
// remove waves, edge add/drop with local recompute — must land on exactly
// the state a from-scratch rebuild over the final content + adjacency
// produces, counter for counter, as long as no slot saturates. Plus the
// saturation edge cases: sticky saturated slots and the decrement
// underflow clamp.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bloom/counting_abf_table.hpp"
#include "test_util.hpp"

namespace makalu {
namespace {

constexpr BloomParameters kParams{/*bits=*/256, /*hashes=*/3};

struct Op {
  enum Kind { kInsert, kRemove, kAddEdge, kRemoveEdge } kind;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint64_t key = 0;
};

// Rebuild reference: a fresh table wired with the final adjacency, seeded
// with the final content multiset, derived in one pass.
CountingAbfTable rebuild_reference(
    std::size_t n, std::size_t depth,
    const std::vector<std::vector<std::uint32_t>>& adjacency,
    const std::vector<std::vector<std::uint64_t>>& content) {
  CountingAbfTable reference(n, depth, kParams);
  for (std::uint32_t v = 0; v < n; ++v) {
    reference.set_neighbors(v, adjacency[v]);
    for (const std::uint64_t key : content[v]) {
      reference.seed_content(v, key);
    }
  }
  reference.rebuild_derived();
  return reference;
}

class SeededCountingAbf : public ::testing::TestWithParam<std::uint64_t> {};

// Randomized interleavings of all four incremental ops against the
// from-scratch oracle. Sparse graphs and small content keep every counter
// below saturation, where equality is exact.
TEST_P(SeededCountingAbf, RandomOpsEqualRebuild) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 2917 + 11);
  const std::size_t n = 16 + rng.uniform_below(12);
  const std::size_t depth = 3;

  // Shadow state: adjacency as sorted-free vectors, content as multisets.
  std::vector<std::vector<std::uint32_t>> adjacency(n);
  std::vector<std::vector<std::uint64_t>> content(n);
  CountingAbfTable table(n, depth, kParams);

  // Start from a connected ring so edge removals have something to cut.
  for (std::uint32_t v = 0; v < n; ++v) {
    const auto next = static_cast<std::uint32_t>((v + 1) % n);
    adjacency[v].push_back(next);
    adjacency[next].push_back(v);
  }
  for (std::uint32_t v = 0; v < n; ++v) {
    table.set_neighbors(v, adjacency[v]);
  }
  table.rebuild_derived();
  (void)table.take_changes();

  const auto shadow_has_edge = [&](std::uint32_t u, std::uint32_t v) {
    for (const std::uint32_t w : adjacency[u]) {
      if (w == v) return true;
    }
    return false;
  };

  for (int op = 0; op < 60; ++op) {
    const auto u = static_cast<std::uint32_t>(rng.uniform_below(n));
    const auto v = static_cast<std::uint32_t>(rng.uniform_below(n));
    const std::uint64_t key = 1 + rng.uniform_below(6);
    switch (rng.uniform_below(4)) {
      case 0:
        table.insert_content(u, key);
        content[u].push_back(key);
        break;
      case 1: {
        // Remove only keys actually present (underflow clamping is
        // covered separately; here we pin the exact-regime contract).
        if (content[u].empty()) break;
        const std::uint64_t present =
            content[u][rng.uniform_below(content[u].size())];
        table.remove_content(u, present);
        auto& bag = content[u];
        for (std::size_t i = 0; i < bag.size(); ++i) {
          if (bag[i] == present) {
            bag[i] = bag.back();
            bag.pop_back();
            break;
          }
        }
        break;
      }
      case 2: {
        const bool added = table.add_edge(u, v);
        EXPECT_EQ(added, u != v && !shadow_has_edge(u, v));
        if (added) {
          adjacency[u].push_back(v);
          adjacency[v].push_back(u);
        }
        break;
      }
      default: {
        const bool removed = table.remove_edge(u, v);
        EXPECT_EQ(removed, shadow_has_edge(u, v));
        if (removed) {
          auto drop = [](std::vector<std::uint32_t>& row, std::uint32_t x) {
            for (std::size_t i = 0; i < row.size(); ++i) {
              if (row[i] == x) {
                row[i] = row.back();
                row.pop_back();
                return;
              }
            }
          };
          drop(adjacency[u], v);
          drop(adjacency[v], u);
        }
        break;
      }
    }
  }

  const CountingAbfTable reference =
      rebuild_reference(n, depth, adjacency, content);
  EXPECT_TRUE(table.equals(reference))
      << "incremental state diverged from rebuild, seed=" << seed;
}

// The change journal must cover every level that differs from the
// pre-change state: replaying ONLY the journaled (node, level) filters
// onto a stale copy must reproduce the updated table.
TEST_P(SeededCountingAbf, ChangeJournalCoversEveryChangedLevel) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 587 + 3);
  const std::size_t n = 14;
  const std::size_t depth = 3;

  std::vector<std::vector<std::uint32_t>> adjacency(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    const auto next = static_cast<std::uint32_t>((v + 1) % n);
    adjacency[v].push_back(next);
    adjacency[next].push_back(v);
  }
  std::vector<std::vector<std::uint64_t>> content(n);
  content[3] = {7, 9};
  content[8] = {9};

  CountingAbfTable table = rebuild_reference(n, depth, adjacency, content);
  CountingAbfTable stale = rebuild_reference(n, depth, adjacency, content);
  (void)table.take_changes();

  const auto node = static_cast<std::uint32_t>(rng.uniform_below(n));
  const std::uint64_t key = 5 + rng.uniform_below(4);
  table.insert_content(node, key);
  const auto changes = table.take_changes();
  EXPECT_FALSE(changes.empty());

  // Any (node, level) NOT in the journal must be unchanged vs `stale`.
  for (std::uint32_t x = 0; x < n; ++x) {
    for (std::size_t l = 0; l < depth; ++l) {
      bool journaled = false;
      for (const auto& c : changes) {
        if (c.node == x && c.level == l) journaled = true;
      }
      if (!journaled) {
        EXPECT_TRUE(table.level(x, l) == stale.level(x, l))
            << "unjournaled change at node " << x << " level " << l
            << " seed=" << seed;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededCountingAbf,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

// --- saturation / underflow edge cases -------------------------------------

TEST(CountingAbfSaturation, RepeatedRemovesClampAtZeroNotUnderflow) {
  CountingAbfTable table(4, 2, kParams);
  std::vector<std::uint32_t> row{1};
  table.set_neighbors(0, row);
  std::vector<std::uint32_t> row0{0};
  table.set_neighbors(1, row0);
  table.rebuild_derived();

  // Remove a key that was never inserted, repeatedly: every slot must
  // stay at zero (the decrement-underflow guard), so a later insert
  // behaves exactly as on a fresh table.
  for (int i = 0; i < 5; ++i) table.remove_content(0, 42);
  for (const std::uint8_t c : table.level(0, 0).counters()) {
    EXPECT_EQ(c, 0u);
  }
  table.insert_content(0, 42);
  EXPECT_TRUE(table.level(0, 0).maybe_contains(42));
  table.remove_content(0, 42);
  EXPECT_FALSE(table.level(0, 0).maybe_contains(42));
}

TEST(CountingAbfSaturation, SaturatedSlotsAreStickyUnderRemoval) {
  CountingAbfTable table(2, 1, kParams);
  // Drive one node's level-0 slots to saturation with repeated inserts of
  // one key, then remove more times than were ever inserted: the slots
  // must pin at kSaturation (a bounded false-positive, never a false
  // negative or a wrap).
  const int inserts = CountingBloomFilter::kSaturation + 4;
  for (int i = 0; i < inserts; ++i) table.insert_content(0, 9);
  for (int i = 0; i < inserts + 8; ++i) table.remove_content(0, 9);
  EXPECT_TRUE(table.level(0, 0).maybe_contains(9));
}

}  // namespace
}  // namespace makalu
