// Microbenchmarks: Makalu overlay construction and the rating-function
// hot path, plus the candidate-gathering ablation (MH walk vs uniform
// oracle).
#include <benchmark/benchmark.h>

#include "core/overlay_builder.hpp"
#include "core/rating.hpp"
#include "net/latency_model.hpp"

namespace {

using namespace makalu;

void BM_OverlayBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const EuclideanModel latency(n, 42);
  const OverlayBuilder builder;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.build(latency, seed++));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_OverlayBuild)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_OverlayBuildOracleCandidates(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const EuclideanModel latency(n, 42);
  MakaluParameters params;
  params.oracle_uniform_candidates = true;
  const OverlayBuilder builder(params);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.build(latency, seed++));
  }
}
BENCHMARK(BM_OverlayBuildOracleCandidates)
    ->Arg(5000)
    ->Unit(benchmark::kMillisecond);

void BM_RateNeighbors(benchmark::State& state) {
  const std::size_t n = 5000;
  const EuclideanModel latency(n, 42);
  const MakaluOverlay overlay = OverlayBuilder().build(latency, 7);
  RatingEngine engine(overlay.graph, latency);
  NodeId u = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.rate_neighbors(u));
    u = (u + 1) % static_cast<NodeId>(n);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RateNeighbors);

void BM_WorstNeighbor(benchmark::State& state) {
  const std::size_t n = 5000;
  const EuclideanModel latency(n, 42);
  const MakaluOverlay overlay = OverlayBuilder().build(latency, 7);
  RatingEngine engine(overlay.graph, latency);
  NodeId u = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.worst_neighbor(u));
    u = (u + 1) % static_cast<NodeId>(n);
  }
}
BENCHMARK(BM_WorstNeighbor);

void BM_MaintenanceRound(benchmark::State& state) {
  const std::size_t n = 2000;
  const EuclideanModel latency(n, 42);
  const OverlayBuilder builder;
  MakaluOverlay overlay = builder.build(latency, 7);
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.maintenance_round(overlay, latency, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MaintenanceRound)->Unit(benchmark::kMillisecond);

}  // namespace
