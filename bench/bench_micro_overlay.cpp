// Microbenchmarks: Makalu overlay construction and the rating-function
// hot path, the candidate-gathering ablation (MH walk vs uniform oracle),
// and the maintenance-sweep comparison (legacy serial vs the cached
// deterministic sweep, inline and pooled) over a churn-damaged 20k-node
// overlay. The sweep comparison self-checks: before timing anything it
// runs the deterministic sweep inline and on a pool and aborts the whole
// binary if the resulting overlays are not bit-identical.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/overlay_builder.hpp"
#include "core/rating.hpp"
#include "core/rating_cache.hpp"
#include "net/latency_model.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace makalu;

void BM_OverlayBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const EuclideanModel latency(n, 42);
  const OverlayBuilder builder;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.build(latency, seed++));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_OverlayBuild)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_OverlayBuildOracleCandidates(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const EuclideanModel latency(n, 42);
  MakaluParameters params;
  params.oracle_uniform_candidates = true;
  const OverlayBuilder builder(params);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.build(latency, seed++));
  }
}
BENCHMARK(BM_OverlayBuildOracleCandidates)
    ->Arg(5000)
    ->Unit(benchmark::kMillisecond);

void BM_RateNeighbors(benchmark::State& state) {
  const std::size_t n = 5000;
  const EuclideanModel latency(n, 42);
  const MakaluOverlay overlay = OverlayBuilder().build(latency, 7);
  RatingEngine engine(overlay.graph, latency);
  NodeId u = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.rate_neighbors(u));
    u = (u + 1) % static_cast<NodeId>(n);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RateNeighbors);

void BM_WorstNeighbor(benchmark::State& state) {
  const std::size_t n = 5000;
  const EuclideanModel latency(n, 42);
  const MakaluOverlay overlay = OverlayBuilder().build(latency, 7);
  RatingEngine engine(overlay.graph, latency);
  NodeId u = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.worst_neighbor(u));
    u = (u + 1) % static_cast<NodeId>(n);
  }
}
BENCHMARK(BM_WorstNeighbor);

void BM_MaintenanceRound(benchmark::State& state) {
  const std::size_t n = 2000;
  const EuclideanModel latency(n, 42);
  const OverlayBuilder builder;
  MakaluOverlay overlay = builder.build(latency, 7);
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.maintenance_round(overlay, latency, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MaintenanceRound)->Unit(benchmark::kMillisecond);

// --- repair-sweep comparison over a churn-damaged large overlay ------------

/// One shared workload: a 20k-node overlay with 15% of its nodes
/// ungracefully departed (links severed), the situation every periodic
/// maintenance sweep faces under churn. Built once per binary run.
struct RepairWorkload {
  std::size_t n = 20'000;
  EuclideanModel latency;
  OverlayBuilder builder;
  MakaluOverlay damaged;
  std::vector<bool> active;

  RepairWorkload() : latency(n, 42) {
    damaged = builder.build(latency, 7);
    active.assign(n, true);
    Rng rng(1234);
    for (NodeId v = 0; v < n; ++v) {
      if (rng.chance(0.15)) {
        damaged.graph.isolate(v);
        active[v] = false;  // departed peers are offline, as in churn
      }
    }
  }

  static const RepairWorkload& get() {
    static const RepairWorkload workload;
    return workload;
  }
};

std::vector<std::vector<NodeId>> canonical_adjacency(const Graph& g) {
  std::vector<std::vector<NodeId>> adj(g.node_count());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const auto nbrs = g.neighbors(u);
    adj[u].assign(nbrs.begin(), nbrs.end());
    std::sort(adj[u].begin(), adj[u].end());
  }
  return adj;
}

std::size_t run_deterministic_repair(MakaluOverlay& overlay,
                                     CachedRatingEngine& cache,
                                     const RepairWorkload& w,
                                     std::uint64_t seed, ThreadPool* pool) {
  SweepOptions sweep;
  sweep.seed = seed;
  sweep.active = &w.active;
  sweep.pool = pool;
  return w.builder.deterministic_sweep(overlay, cache, sweep);
}

/// The timed comparison is only honest if every schedule produces the
/// same overlay; verify inline-vs-pooled bit-identity up front and refuse
/// to benchmark a diverging implementation.
bool verify_repair_determinism() {
  const RepairWorkload& w = RepairWorkload::get();
  MakaluOverlay inline_run = w.damaged;
  CachedRatingEngine inline_cache(inline_run.graph, w.latency,
                                  w.builder.parameters().weights);
  const std::size_t inline_changes =
      run_deterministic_repair(inline_run, inline_cache, w, 99, nullptr);
  ThreadPool pool(4);
  MakaluOverlay pooled_run = w.damaged;
  CachedRatingEngine pooled_cache(pooled_run.graph, w.latency,
                                  w.builder.parameters().weights);
  const std::size_t pooled_changes =
      run_deterministic_repair(pooled_run, pooled_cache, w, 99, &pool);
  if (inline_changes != pooled_changes ||
      canonical_adjacency(inline_run.graph) !=
          canonical_adjacency(pooled_run.graph)) {
    std::fprintf(stderr,
                 "FATAL: deterministic repair sweep diverged between the "
                 "inline and pooled schedules (changes %zu vs %zu) — "
                 "refusing to report timings for a broken invariant\n",
                 inline_changes, pooled_changes);
    std::exit(1);
  }
  return true;
}

void divergence_check_once() {
  static const bool checked = verify_repair_determinism();
  (void)checked;
}

void BM_RepairSweepLegacy(benchmark::State& state) {
  const RepairWorkload& w = RepairWorkload::get();
  divergence_check_once();
  Rng rng(17);
  for (auto _ : state) {
    state.PauseTiming();
    MakaluOverlay overlay = w.damaged;
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        w.builder.maintenance_round(overlay, w.latency, rng, &w.active));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.n));
}
BENCHMARK(BM_RepairSweepLegacy)->Unit(benchmark::kMillisecond);

void BM_RepairSweepCachedInline(benchmark::State& state) {
  const RepairWorkload& w = RepairWorkload::get();
  divergence_check_once();
  std::uint64_t seed = 23;
  for (auto _ : state) {
    // Copy + cache attach sit outside the timed region: under churn the
    // cache persists across sweeps, so per-sweep cost is what matters.
    state.PauseTiming();
    MakaluOverlay overlay = w.damaged;
    CachedRatingEngine cache(overlay.graph, w.latency,
                             w.builder.parameters().weights);
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        run_deterministic_repair(overlay, cache, w, seed++, nullptr));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.n));
}
BENCHMARK(BM_RepairSweepCachedInline)->Unit(benchmark::kMillisecond);

void BM_RepairSweepCachedParallel(benchmark::State& state) {
  const RepairWorkload& w = RepairWorkload::get();
  divergence_check_once();
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  std::uint64_t seed = 23;  // same seeds as inline: same repairs, by design
  for (auto _ : state) {
    state.PauseTiming();
    MakaluOverlay overlay = w.damaged;
    CachedRatingEngine cache(overlay.graph, w.latency,
                             w.builder.parameters().weights);
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        run_deterministic_repair(overlay, cache, w, seed++, &pool));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.n));
}
BENCHMARK(BM_RepairSweepCachedParallel)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// --- cached vs fresh rating queries ---------------------------------------

void BM_RateNeighborsCachedSteadyState(benchmark::State& state) {
  // Counterpart of BM_RateNeighbors: same query stream against a warm
  // cache over an unchanging graph — the all-hits regime a sweep sees for
  // nodes far from any mutation.
  const std::size_t n = 5000;
  const EuclideanModel latency(n, 42);
  MakaluOverlay overlay = OverlayBuilder().build(latency, 7);
  CachedRatingEngine cache(overlay.graph, latency);
  NodeId u = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.rate_neighbors(u).size());
    u = (u + 1) % static_cast<NodeId>(n);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RateNeighborsCachedSteadyState);

void BM_RateNeighborsCachedUnderMutation(benchmark::State& state) {
  // Mixed regime: one edge flip per 8 queries dirties a 2-hop footprint;
  // most lookups still hit.
  const std::size_t n = 5000;
  const EuclideanModel latency(n, 42);
  MakaluOverlay overlay = OverlayBuilder().build(latency, 7);
  CachedRatingEngine cache(overlay.graph, latency);
  Rng rng(31);
  NodeId u = 0;
  std::size_t tick = 0;
  for (auto _ : state) {
    if (++tick % 8 == 0) {
      const auto a = static_cast<NodeId>(rng.uniform_below(n));
      const auto nbrs = overlay.graph.neighbors(a);
      if (!nbrs.empty()) {
        const NodeId b = nbrs[rng.uniform_below(nbrs.size())];
        overlay.graph.remove_edge(a, b);
        overlay.graph.add_edge(a, b);
      }
    }
    benchmark::DoNotOptimize(cache.rate_neighbors(u).size());
    u = (u + 1) % static_cast<NodeId>(n);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RateNeighborsCachedUnderMutation);

}  // namespace
