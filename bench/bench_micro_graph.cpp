// Microbenchmarks: graph traversal kernels (BFS, Dijkstra, flood) on
// Makalu-sized overlays.
#include <benchmark/benchmark.h>

#include "core/overlay_builder.hpp"
#include "graph/algorithms.hpp"
#include "net/latency_model.hpp"
#include "search/flood_search.hpp"
#include "sim/replica_placement.hpp"

namespace {

using namespace makalu;

struct World {
  explicit World(std::size_t n)
      : latency(n, 42),
        overlay(OverlayBuilder().build(latency, 7)),
        csr(CsrGraph::from_graph(overlay.graph)),
        weighted(CsrGraph::from_graph(
            overlay.graph,
            [this](NodeId a, NodeId b) { return latency.latency(a, b); })) {}

  EuclideanModel latency;
  MakaluOverlay overlay;
  CsrGraph csr;
  CsrGraph weighted;
};

World& world(std::size_t n) {
  static std::map<std::size_t, std::unique_ptr<World>> cache;
  auto& slot = cache[n];
  if (!slot) slot = std::make_unique<World>(n);
  return *slot;
}

void BM_BfsHops(benchmark::State& state) {
  auto& w = world(static_cast<std::size_t>(state.range(0)));
  std::vector<std::uint32_t> distances;
  std::vector<NodeId> scratch;
  NodeId source = 0;
  for (auto _ : state) {
    bfs_hops(w.csr, source, distances, scratch);
    source = (source + 1) % static_cast<NodeId>(w.csr.node_count());
    benchmark::DoNotOptimize(distances.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.csr.node_count()));
}
BENCHMARK(BM_BfsHops)->Arg(2000)->Arg(10000);

void BM_Dijkstra(benchmark::State& state) {
  auto& w = world(static_cast<std::size_t>(state.range(0)));
  NodeId source = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dijkstra_costs(w.weighted, source));
    source = (source + 1) % static_cast<NodeId>(w.csr.node_count());
  }
}
BENCHMARK(BM_Dijkstra)->Arg(2000)->Arg(10000);

void BM_FloodTtl4(benchmark::State& state) {
  auto& w = world(static_cast<std::size_t>(state.range(0)));
  const FloodEngine engine(w.csr);
  FloodOptions options;
  options.ttl = 4;
  QueryWorkspace workspace;  // reused: steady-state floods allocate nothing
  const auto never = [](NodeId) { return false; };
  NodeId source = 0;
  std::uint64_t messages = 0;
  for (auto _ : state) {
    const auto r =
        engine.run(source, NodePredicate(never), options, workspace);
    messages += r.messages;
    source = (source + 1) % static_cast<NodeId>(w.csr.node_count());
  }
  state.counters["msgs/flood"] = benchmark::Counter(
      static_cast<double>(messages) /
      static_cast<double>(state.iterations()));
}
BENCHMARK(BM_FloodTtl4)->Arg(2000)->Arg(10000);

void BM_ConnectedComponents(benchmark::State& state) {
  auto& w = world(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(connected_components(w.csr));
  }
}
BENCHMARK(BM_ConnectedComponents)->Arg(10000);

void BM_CsrFromGraph(benchmark::State& state) {
  auto& w = world(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CsrGraph::from_graph(w.overlay.graph));
  }
}
BENCHMARK(BM_CsrFromGraph)->Arg(10000);

}  // namespace
