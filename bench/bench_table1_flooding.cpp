// Table 1 — Messages per query and minimum TTL required to resolve
// queries on each topology (paper: 100,000 nodes).
//
// Paper rows (replication% : v0.4 msgs/TTL | v0.6 msgs/TTL | Makalu):
//   0.05 : 30,558/7 | 51,184/4 | 6,783/4
//   0.10 : 24,156/7 | 51,127/4 | 6,668/4
//   0.50 : 11,959/6 |  6,444/3 |   770/3
//   1.00 : 11,942/6 |  6,427/3 |   758/3
//
// Min TTL is the smallest TTL resolving >95% of queries (the paper's
// criterion for "realistic TTL limits"); messages are measured at that
// TTL. Laptop default runs at 20,000 nodes — absolute counts shrink with
// n, but the ordering and ratios (Makalu ~7-8x cheaper than either
// Gnutella topology) are scale-stable.
#include "bench_common.hpp"

#include "analysis/flood_experiments.hpp"
#include "analysis/paper_reference.hpp"
#include "net/latency_model.hpp"
#include "search/two_tier_flood.hpp"

int main(int argc, char** argv) try {
  using namespace makalu;
  const CliOptions options(argc, argv, {"ablate"});
  const bool paper = options.paper_scale();
  const std::size_t n = options.nodes(paper ? 100'000 : 20'000);
  const std::size_t runs = options.runs(paper ? 3 : 2);
  const std::size_t queries = options.queries(paper ? 300 : 150);
  const std::uint64_t seed = options.seed(42);
  bench::print_config("table 1: flooding messages/query and min TTL", n,
                      runs, queries, seed, paper);
  bench::BenchRun bench_run("table1_flooding", options, n, runs, queries,
                            seed);

  auto build_phase = bench_run.phase("build-topologies");
  const EuclideanModel latency(n, seed ^ 0x7ab1e1);
  TopologyFactoryOptions topo;
  topo.makalu = bench::search_makalu_parameters();

  const TopologyKind kinds[] = {TopologyKind::kGnutellaV04,
                                TopologyKind::kGnutellaV06,
                                TopologyKind::kMakalu};
  std::vector<BuiltTopology> topologies;
  for (const auto kind : kinds) {
    topologies.push_back(build_topology(kind, latency, seed, topo));
  }
  build_phase.stop();

  auto ttl_phase = bench_run.phase("min-ttl-search");
  Table table({"replication", "topology", "msgs/query", "paper msgs",
               "min TTL", "paper TTL", "success"});
  for (const auto& row : paper::kTable1) {
    for (std::size_t t = 0; t < topologies.size(); ++t) {
      FloodExperimentOptions fopts;
      fopts.replication_ratio = row.replication_percent / 100.0;
      fopts.queries = queries;
      fopts.runs = runs;
      fopts.objects = 40;
      fopts.seed = seed;
      fopts.metrics = bench_run.metrics();
      const auto result = find_min_ttl(topologies[t], fopts, 0.95, 10);
      double paper_msgs = 0.0;
      std::uint32_t paper_ttl = 0;
      switch (kinds[t]) {
        case TopologyKind::kGnutellaV04:
          paper_msgs = row.v04_messages;
          paper_ttl = row.v04_min_ttl;
          break;
        case TopologyKind::kGnutellaV06:
          paper_msgs = row.v06_messages;
          paper_ttl = row.v06_min_ttl;
          break;
        default:
          paper_msgs = row.makalu_messages;
          paper_ttl = row.makalu_ttl;
          break;
      }
      table.add_row(
          {Table::num(row.replication_percent, 2) + "%",
           topology_name(kinds[t]),
           Table::num(result.at_min_ttl.mean_messages(), 1),
           Table::num(paper_msgs, 1),
           Table::integer(result.min_ttl) + (result.reached ? "" : "+"),
           Table::integer(paper_ttl),
           Table::percent(result.at_min_ttl.success_rate())});
    }
  }
  ttl_phase.stop();
  bench::emit(table, options.csv());
  std::cout << "\nshape check: Makalu needs the fewest messages at every "
               "replication level (factor >=4 vs v0.4, >=7 vs v0.6 at low "
               "replication); its min TTL never exceeds the others'. "
               "Absolute counts scale with n (paper used 100k; --paper "
               "reproduces that).\n";

  if (options.has("ablate")) {
    // How much of v0.6's bill would deployed Gnutella's Query Routing
    // Protocol (leaf content digests at the ultrapeer) save? QRP removes
    // UP->leaf transmissions for non-matching leaves — but the UP-UP mesh
    // flood it cannot touch is where most of the bandwidth goes, which is
    // the paper's point about v0.6.
    print_banner(std::cout, "ablation: Gnutella v0.6 with/without QRP");
    Table ab({"replication", "QRP", "msgs/query", "success"});
    const auto& v06 = topologies[1];
    const CsrGraph csr = CsrGraph::from_graph(v06.graph);
    for (const double percent : {0.1, 1.0}) {
      const ObjectCatalog catalog(n, 40, percent / 100.0, seed ^ 0x9b9);
      TwoTierFloodEngine engine(csr, v06.is_ultrapeer);
      engine.prepare_qrp(catalog);
      for (const bool qrp : {false, true}) {
        TwoTierFloodOptions fopts;
        fopts.ttl = 4;
        fopts.use_qrp = qrp;
        Rng rng(seed ^ 0x717);
        QueryAggregate agg;
        for (std::size_t q = 0; q < std::min<std::size_t>(queries, 100);
             ++q) {
          const auto source = static_cast<NodeId>(rng.uniform_below(n));
          const auto object =
              static_cast<ObjectId>(rng.uniform_below(40));
          agg.add(engine.run(source, object, catalog, fopts));
        }
        ab.add_row({Table::num(percent, 2) + "%", qrp ? "on" : "off",
                    Table::num(agg.mean_messages(), 1),
                    Table::percent(agg.success_rate())});
      }
    }
    bench::emit(ab, options.csv());
    std::cout << "\nQRP shaves the UP->leaf quarter of the flood and "
               "leaves success untouched — it cannot fix the ultrapeer "
               "mesh, which still outspends Makalu several-fold.\n";
  }
  return bench_run.finish() ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
