// Figure 3 — Success rate vs flooding TTL for various Makalu network
// sizes at 1% replication.
//
// Paper: curves for 100 ... 100,000 nodes nearly coincide — success at a
// given TTL is roughly size-independent, because node capacity is fixed
// and floods on larger graphs reach proportionally more fresh nodes per
// hop. All sizes reach ~100% by TTL 4.
#include "bench_common.hpp"

#include "analysis/flood_experiments.hpp"
#include "net/latency_model.hpp"

int main(int argc, char** argv) try {
  using namespace makalu;
  const CliOptions options(argc, argv);
  const bool paper = options.paper_scale();
  const std::size_t runs = options.runs(2);
  const std::size_t queries = options.queries(paper ? 500 : 200);
  const std::uint64_t seed = options.seed(42);
  constexpr std::uint32_t kMaxTtl = 4;

  std::vector<std::size_t> sizes{100, 500, 1'000, 5'000, 20'000};
  if (paper) {
    sizes = {100, 200, 500, 1'000, 2'000, 5'000, 10'000, 100'000};
  }
  // --n caps the sweep (smoke runs): keep sizes <= n, always >= 1 point.
  if (options.has("n")) {
    const std::size_t cap = options.nodes(sizes.back());
    while (sizes.size() > 1 && sizes.back() > cap) sizes.pop_back();
  }
  bench::print_config(
      "fig 3: success rate vs TTL across network sizes (1% repl)",
      sizes.back(), runs, queries, seed, paper);
  bench::BenchRun bench_run("fig3_success_vs_ttl", options, sizes.back(),
                            runs, queries, seed);

  Table table({"n", "TTL0", "TTL1", "TTL2", "TTL3", "TTL4"});
  for (const std::size_t n : sizes) {
    auto size_phase = bench_run.phase("n=" + std::to_string(n));
    const EuclideanModel latency(n, seed ^ (0xf13 + n));
    TopologyFactoryOptions topo;
    topo.makalu = bench::search_makalu_parameters();
    const auto topology =
        build_topology(TopologyKind::kMakalu, latency, seed, topo);
    FloodExperimentOptions fopts;
    fopts.replication_ratio = 0.01;
    fopts.queries = queries;
    fopts.runs = runs;
    fopts.objects = 30;
    fopts.seed = seed;
    fopts.metrics = bench_run.metrics();
    const auto rates = success_vs_ttl(topology, fopts, kMaxTtl);
    std::vector<std::string> row{Table::integer(static_cast<long long>(n))};
    for (const double r : rates) row.push_back(Table::percent(r));
    table.add_row(std::move(row));
  }
  bench::emit(table, options.csv());
  std::cout << "\nshape check: rows nearly coincide — success at each TTL "
               "is size-independent, and every size saturates by TTL 4 "
               "(tiny networks saturate earlier because 1% replication "
               "still means >=1 replica).\n";
  return bench_run.finish() ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
