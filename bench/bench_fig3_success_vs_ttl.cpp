// Figure 3 — Success rate vs flooding TTL for various Makalu network
// sizes at 1% replication.
//
// Paper: curves for 100 ... 100,000 nodes nearly coincide — success at a
// given TTL is roughly size-independent, because node capacity is fixed
// and floods on larger graphs reach proportionally more fresh nodes per
// hop. All sizes reach ~100% by TTL 4.
#include "bench_common.hpp"

#include "analysis/flood_experiments.hpp"
#include "net/latency_model.hpp"

int main(int argc, char** argv) try {
  using namespace makalu;
  const CliOptions options(argc, argv);
  const bool paper = options.paper_scale();
  const std::size_t runs = options.runs(2);
  const std::size_t queries = options.queries(paper ? 500 : 200);
  const std::uint64_t seed = options.seed(42);
  constexpr std::uint32_t kMaxTtl = 4;

  std::vector<std::size_t> sizes{100, 500, 1'000, 5'000, 20'000};
  if (paper) {
    sizes = {100, 200, 500, 1'000, 2'000, 5'000, 10'000, 100'000};
  }
  bench::print_config(
      "fig 3: success rate vs TTL across network sizes (1% repl)",
      sizes.back(), runs, queries, seed, paper);

  Table table({"n", "TTL0", "TTL1", "TTL2", "TTL3", "TTL4"});
  for (const std::size_t n : sizes) {
    const EuclideanModel latency(n, seed ^ (0xf13 + n));
    TopologyFactoryOptions topo;
    topo.makalu = bench::search_makalu_parameters();
    const auto topology =
        build_topology(TopologyKind::kMakalu, latency, seed, topo);
    FloodExperimentOptions fopts;
    fopts.replication_ratio = 0.01;
    fopts.queries = queries;
    fopts.runs = runs;
    fopts.objects = 30;
    fopts.seed = seed;
    const auto rates = success_vs_ttl(topology, fopts, kMaxTtl);
    std::vector<std::string> row{Table::integer(static_cast<long long>(n))};
    for (const double r : rates) row.push_back(Table::percent(r));
    table.add_row(std::move(row));
  }
  bench::emit(table, options.csv());
  std::cout << "\nshape check: rows nearly coincide — success at each TTL "
               "is size-independent, and every size saturates by TTL 4 "
               "(tiny networks saturate earlier because 1% replication "
               "still means >=1 replica).\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
