// §4.4 — Flooding under very low replication and the convergence
// boundary.
//
// Paper (100,000 nodes): at 0.01% replication (10 replicas), TTL-4
// flooding resolves 56% of queries with ≈6,500 messages. The section also
// predicts the two-phase behaviour of floods in expanders: few duplicates
// while expanding, a surge once the flood crosses the convergence
// boundary (≈ half the nodes, ≈ half the diameter) — reported here as the
// per-TTL duplicate fraction.
#include "bench_common.hpp"

#include "analysis/flood_experiments.hpp"
#include "analysis/paper_reference.hpp"
#include "net/latency_model.hpp"

int main(int argc, char** argv) try {
  using namespace makalu;
  const CliOptions options(argc, argv);
  const bool paper = options.paper_scale();
  const std::size_t n = options.nodes(paper ? 100'000 : 50'000);
  const std::size_t runs = options.runs(2);
  const std::size_t queries = options.queries(paper ? 300 : 150);
  const std::uint64_t seed = options.seed(42);
  bench::print_config("sec 4.4: flooding under very low replication", n,
                      runs, queries, seed, paper);
  bench::BenchRun bench_run("sec44_low_replication", options, n, runs,
                            queries, seed);

  auto build_phase = bench_run.phase("build-overlay");
  const EuclideanModel latency(n, seed ^ 0x10c4);
  TopologyFactoryOptions topo;
  topo.makalu = bench::search_makalu_parameters();
  const auto topology =
      build_topology(TopologyKind::kMakalu, latency, seed, topo);
  build_phase.stop();
  auto flood_phase = bench_run.phase("low-replication-floods");

  // Scale the paper's "10 replicas out of 100k" to the configured n.
  const double ratio_001 = 0.0001;  // 0.01%
  Table table({"replication", "TTL", "success", "paper", "msgs/query"});
  {
    FloodExperimentOptions fopts;
    fopts.replication_ratio = ratio_001;
    fopts.ttl = 4;
    fopts.queries = queries;
    fopts.runs = runs;
    fopts.objects = 40;
    fopts.seed = seed;
    fopts.metrics = bench_run.metrics();
    const auto agg = run_flood_batch(topology, fopts);
    table.add_row({"0.01%", "4", Table::percent(agg.success_rate()),
                   Table::percent(paper::kSuccessAt001PercentTtl4),
                   Table::num(agg.mean_messages(), 1)});
  }
  {
    FloodExperimentOptions fopts;
    fopts.replication_ratio = 0.0005;  // 0.05%
    fopts.ttl = 4;
    fopts.queries = queries;
    fopts.runs = runs;
    fopts.objects = 40;
    fopts.seed = seed;
    fopts.metrics = bench_run.metrics();
    const auto agg = run_flood_batch(topology, fopts);
    table.add_row({"0.05%", "4", Table::percent(agg.success_rate()),
                   Table::percent(paper::kSuccessAt005PercentTtl4),
                   Table::num(agg.mean_messages(), 1)});
  }
  flood_phase.stop();
  bench::emit(table, options.csv());

  print_banner(std::cout, "convergence boundary: duplicates vs TTL");
  auto boundary_phase = bench_run.phase("convergence-boundary");
  Table boundary({"TTL", "msgs/query", "dup fraction", "visited",
                  "visited/n"});
  for (std::uint32_t ttl = 1; ttl <= 6; ++ttl) {
    FloodExperimentOptions fopts;
    fopts.replication_ratio = ratio_001;
    fopts.ttl = ttl;
    fopts.queries = std::min<std::size_t>(queries, 60);
    fopts.runs = 1;
    fopts.objects = 20;
    fopts.seed = seed;
    fopts.metrics = bench_run.metrics();
    const auto agg = run_flood_batch(topology, fopts);
    boundary.add_row(
        {Table::integer(ttl), Table::num(agg.mean_messages(), 1),
         Table::percent(agg.duplicate_fraction()),
         Table::num(agg.mean_nodes_visited(), 0),
         Table::percent(agg.mean_nodes_visited() / static_cast<double>(n))});
  }
  boundary_phase.stop();
  bench::emit(boundary, options.csv());
  std::cout << "\nshape check: duplicate share stays low while coverage "
               "<~50% of nodes, then surges past the convergence boundary "
               "— the two-phase flood behaviour of §4.4.\n";
  return bench_run.finish() ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
