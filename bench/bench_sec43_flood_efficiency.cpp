// §4.3 — Makalu flooding efficiency: duplicate messages.
//
// Paper (100,000 nodes): a TTL-4 flood generates ≈6,500 messages of which
// only 2.7% are duplicates; for replication >=0.5% a TTL-3 flood resolves
// all queries with <800 messages; at 0.05% a TTL-4 flood satisfies 95%.
//
// Also reports the duplicate-suppression ablation (query-ID caching off):
// the same flood without the cache re-forwards every duplicate arrival.
#include "bench_common.hpp"

#include <thread>

#include "analysis/flood_experiments.hpp"
#include "analysis/paper_reference.hpp"
#include "analysis/parallel_query_driver.hpp"
#include "net/latency_model.hpp"
#include "search/flood_search.hpp"
#include "sim/replica_placement.hpp"
#include "support/stopwatch.hpp"

int main(int argc, char** argv) try {
  using namespace makalu;
  // --batch runs every flood table through the shared-frontier batched
  // kernel (results are bit-identical; see the speedup section below).
  const CliOptions options(argc, argv, {"batch"});
  const bool use_batch = options.has("batch");
  const bool paper = options.paper_scale();
  // Duplicate fractions depend on how far a TTL-4 flood reaches relative
  // to n; the paper's 2.7% needs the flood to stay inside the convergence
  // boundary, so the default n is larger here than for the other benches.
  const std::size_t n = options.nodes(paper ? 100'000 : 50'000);
  const std::size_t runs = options.runs(2);
  const std::size_t queries = options.queries(paper ? 300 : 150);
  const std::uint64_t seed = options.seed(42);
  bench::print_config("sec 4.3: Makalu flooding efficiency (duplicates)", n,
                      runs, queries, seed, paper);
  bench::BenchRun bench_run("sec43_flood_efficiency", options, n, runs,
                            queries, seed);

  auto build_phase = bench_run.phase("build-overlay");
  const EuclideanModel latency(n, seed ^ 0x600d);
  TopologyFactoryOptions topo;
  topo.makalu = bench::search_makalu_parameters();
  const auto topology =
      build_topology(TopologyKind::kMakalu, latency, seed, topo);
  build_phase.stop();

  struct Case {
    double replication_percent;
    std::uint32_t ttl;
    const char* note;
  };
  const Case cases[] = {
      {1.0, 4, "paper: ~6,500 msgs, 2.7% dup, 100% success"},
      {0.5, 3, "paper: <800 msgs, all resolved"},
      {1.0, 3, "paper: <800 msgs, all resolved"},
      {0.05, 4, "paper: 95% success"},
  };

  Table table({"replication", "TTL", "msgs/query", "dup fraction",
               "success", "visited", "note"});
  auto flood_phase = bench_run.phase("flood-cases");
  for (const auto& c : cases) {
    FloodExperimentOptions fopts;
    fopts.replication_ratio = c.replication_percent / 100.0;
    fopts.ttl = c.ttl;
    fopts.queries = queries;
    fopts.runs = runs;
    fopts.objects = 40;
    fopts.seed = seed;
    fopts.batch = use_batch;
    fopts.metrics = bench_run.metrics();
    const auto agg = run_flood_batch(topology, fopts);
    table.add_row({Table::num(c.replication_percent, 2) + "%",
                   Table::integer(c.ttl),
                   Table::num(agg.mean_messages(), 1),
                   Table::percent(agg.duplicate_fraction()),
                   Table::percent(agg.success_rate()),
                   Table::num(agg.mean_nodes_visited(), 0), c.note});
  }
  flood_phase.stop();
  bench::emit(table, options.csv());

  print_banner(std::cout, "ablation: query-ID duplicate suppression");
  // Inside the expansion phase (TTL 4) the query-ID cache barely matters;
  // past the convergence boundary (TTL 6) dropping it lets duplicate
  // copies re-forward and message cost explodes.
  Table ab({"TTL", "suppression", "msgs/query", "dup fraction", "success"});
  auto ablation_phase = bench_run.phase("suppression-ablation");
  for (const std::uint32_t ablation_ttl : {4u, 6u}) {
    for (const bool suppression : {true, false}) {
      FloodExperimentOptions fopts;
      fopts.replication_ratio = 0.01;
      fopts.ttl = ablation_ttl;
      fopts.queries = std::min<std::size_t>(queries, 40);
      fopts.runs = 1;
      fopts.objects = 20;
      fopts.seed = seed;
      fopts.duplicate_suppression = suppression;
      const auto agg = run_flood_batch(topology, fopts);
      ab.add_row({Table::integer(ablation_ttl),
                  suppression ? "on (Gnutella-style cache)" : "off",
                  Table::num(agg.mean_messages(), 1),
                  Table::percent(agg.duplicate_fraction()),
                  Table::percent(agg.success_rate())});
    }
  }
  ablation_phase.stop();
  bench::emit(ab, options.csv());
  std::cout << "\nshape check: duplicates are a small share of TTL-4 "
               "messages (expansion phase); past the convergence boundary "
               "the cache is what keeps deep floods affordable.\n";

  print_banner(std::cout, "parallel query driver: 1 thread vs hardware");
  // The whole batch above already runs through ParallelQueryDriver; this
  // section times the same workload serially and sharded to show the
  // speedup — and that per-query seeding makes the results bit-identical.
  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  FloodExperimentOptions wopts;
  wopts.replication_ratio = 0.01;
  wopts.ttl = 4;
  wopts.queries = queries;
  wopts.runs = runs;
  wopts.objects = 40;
  wopts.seed = seed;
  wopts.metrics = bench_run.metrics();
  auto scaling_phase = bench_run.phase("thread-scaling");
  Table wall({"threads", "wall ms", "speedup", "msgs/query", "success"});
  double serial_ms = 0.0;
  QueryAggregate serial_agg;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{hw}}) {
    wopts.threads = threads;
    Stopwatch timer;
    const auto agg = run_flood_batch(topology, wopts);
    const double ms = timer.millis();
    if (threads == 1) {
      serial_ms = ms;
      serial_agg = agg;
    }
    wall.add_row({Table::integer(threads), Table::num(ms, 1),
                  Table::num(serial_ms > 0.0 ? serial_ms / ms : 1.0, 2) +
                      "x",
                  Table::num(agg.mean_messages(), 1),
                  Table::percent(agg.success_rate())});
    if (threads != 1 &&
        (agg.mean_messages() != serial_agg.mean_messages() ||
         agg.success_rate() != serial_agg.success_rate())) {
      std::cerr << "error: parallel aggregate diverged from serial run\n";
      return 1;
    }
  }
  scaling_phase.stop();
  bench::emit(wall, options.csv());

  // --- hot path: shared-frontier batching. Same engine, same catalog,
  // same query seeds — scalar per-query loop vs the 64-wide batched
  // kernel on one thread, so the speedup gauge isolates batching from
  // thread scaling. Aggregates must be bit-identical (the batched
  // differential suite pins per-query equality; the bench re-checks).
  {
    auto batch_phase = bench_run.phase("batched-frontier-speedup");
    print_banner(std::cout,
                 "hot path: batched shared frontiers (queries/sec)");
    const CsrGraph csr = CsrGraph::from_graph(topology.graph);
    const ObjectCatalog catalog(n, 40, 0.01, seed ^ 0xba7);
    FloodOptions flood;
    flood.ttl = 4;
    const FloodEngine engine(csr, flood);
    const ParallelQueryDriver driver(1);
    BatchQueryOptions hot_batch;
    hot_batch.queries = queries;
    hot_batch.seed = seed ^ 0x10ad;
    Table hot({"mode", "wall ms", "queries/s", "speedup", "msgs/query"});
    double scalar_qps = 0.0;
    QueryAggregate scalar_agg;
    for (const bool batch : {false, true}) {
      hot_batch.batch = batch;
      double best_ms = 0.0;
      QueryAggregate agg;
      for (int rep = 0; rep < 5; ++rep) {  // min-of-5 against timer noise
        Stopwatch timer;
        QueryAggregate rep_agg =
            driver.run_batch(engine, catalog, hot_batch);
        const double ms = timer.millis();
        if (rep == 0 || ms < best_ms) best_ms = ms;
        agg = rep_agg;
      }
      const double qps =
          static_cast<double>(queries) / (best_ms / 1000.0);
      if (!batch) {
        scalar_qps = qps;
        scalar_agg = agg;
      } else if (agg.success_rate() != scalar_agg.success_rate() ||
                 agg.mean_messages() != scalar_agg.mean_messages() ||
                 agg.duplicate_fraction() !=
                     scalar_agg.duplicate_fraction()) {
        std::cerr << "error: batched flood diverged from scalar results\n";
        return 1;
      }
      hot.add_row({batch ? "batched (64-wide frontiers)" : "scalar",
                   Table::num(best_ms, 1), Table::num(qps, 0),
                   Table::num(qps / scalar_qps, 2) + "x",
                   Table::num(agg.mean_messages(), 1)});
      if (!batch) {
        bench_run.gauge("flood_batch.qps_scalar", qps);
      } else {
        bench_run.gauge("flood_batch.qps", qps);
        bench_run.gauge("flood_batch.speedup", qps / scalar_qps);
      }
    }
    batch_phase.stop();
    bench::emit(hot, options.csv());
    std::cout << "\nbatching amortises visited-set checks and frontier "
                 "pushes across 64 co-scheduled queries; the speedup "
                 "gauge is floor-gated by scripts/bench_compare.py "
                 "--require (see EXPERIMENTS.md for measured numbers "
                 "and thresholds).\n";
  }
  return bench_run.finish() ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
