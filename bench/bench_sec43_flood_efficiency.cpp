// §4.3 — Makalu flooding efficiency: duplicate messages.
//
// Paper (100,000 nodes): a TTL-4 flood generates ≈6,500 messages of which
// only 2.7% are duplicates; for replication >=0.5% a TTL-3 flood resolves
// all queries with <800 messages; at 0.05% a TTL-4 flood satisfies 95%.
//
// Also reports the duplicate-suppression ablation (query-ID caching off):
// the same flood without the cache re-forwards every duplicate arrival.
#include "bench_common.hpp"

#include <thread>

#include "analysis/flood_experiments.hpp"
#include "analysis/paper_reference.hpp"
#include "net/latency_model.hpp"
#include "support/stopwatch.hpp"

int main(int argc, char** argv) try {
  using namespace makalu;
  const CliOptions options(argc, argv);
  const bool paper = options.paper_scale();
  // Duplicate fractions depend on how far a TTL-4 flood reaches relative
  // to n; the paper's 2.7% needs the flood to stay inside the convergence
  // boundary, so the default n is larger here than for the other benches.
  const std::size_t n = options.nodes(paper ? 100'000 : 50'000);
  const std::size_t runs = options.runs(2);
  const std::size_t queries = options.queries(paper ? 300 : 150);
  const std::uint64_t seed = options.seed(42);
  bench::print_config("sec 4.3: Makalu flooding efficiency (duplicates)", n,
                      runs, queries, seed, paper);
  bench::BenchRun bench_run("sec43_flood_efficiency", options, n, runs,
                            queries, seed);

  auto build_phase = bench_run.phase("build-overlay");
  const EuclideanModel latency(n, seed ^ 0x600d);
  TopologyFactoryOptions topo;
  topo.makalu = bench::search_makalu_parameters();
  const auto topology =
      build_topology(TopologyKind::kMakalu, latency, seed, topo);
  build_phase.stop();

  struct Case {
    double replication_percent;
    std::uint32_t ttl;
    const char* note;
  };
  const Case cases[] = {
      {1.0, 4, "paper: ~6,500 msgs, 2.7% dup, 100% success"},
      {0.5, 3, "paper: <800 msgs, all resolved"},
      {1.0, 3, "paper: <800 msgs, all resolved"},
      {0.05, 4, "paper: 95% success"},
  };

  Table table({"replication", "TTL", "msgs/query", "dup fraction",
               "success", "visited", "note"});
  auto flood_phase = bench_run.phase("flood-cases");
  for (const auto& c : cases) {
    FloodExperimentOptions fopts;
    fopts.replication_ratio = c.replication_percent / 100.0;
    fopts.ttl = c.ttl;
    fopts.queries = queries;
    fopts.runs = runs;
    fopts.objects = 40;
    fopts.seed = seed;
    fopts.metrics = bench_run.metrics();
    const auto agg = run_flood_batch(topology, fopts);
    table.add_row({Table::num(c.replication_percent, 2) + "%",
                   Table::integer(c.ttl),
                   Table::num(agg.mean_messages(), 1),
                   Table::percent(agg.duplicate_fraction()),
                   Table::percent(agg.success_rate()),
                   Table::num(agg.mean_nodes_visited(), 0), c.note});
  }
  flood_phase.stop();
  bench::emit(table, options.csv());

  print_banner(std::cout, "ablation: query-ID duplicate suppression");
  // Inside the expansion phase (TTL 4) the query-ID cache barely matters;
  // past the convergence boundary (TTL 6) dropping it lets duplicate
  // copies re-forward and message cost explodes.
  Table ab({"TTL", "suppression", "msgs/query", "dup fraction", "success"});
  auto ablation_phase = bench_run.phase("suppression-ablation");
  for (const std::uint32_t ablation_ttl : {4u, 6u}) {
    for (const bool suppression : {true, false}) {
      FloodExperimentOptions fopts;
      fopts.replication_ratio = 0.01;
      fopts.ttl = ablation_ttl;
      fopts.queries = std::min<std::size_t>(queries, 40);
      fopts.runs = 1;
      fopts.objects = 20;
      fopts.seed = seed;
      fopts.duplicate_suppression = suppression;
      const auto agg = run_flood_batch(topology, fopts);
      ab.add_row({Table::integer(ablation_ttl),
                  suppression ? "on (Gnutella-style cache)" : "off",
                  Table::num(agg.mean_messages(), 1),
                  Table::percent(agg.duplicate_fraction()),
                  Table::percent(agg.success_rate())});
    }
  }
  ablation_phase.stop();
  bench::emit(ab, options.csv());
  std::cout << "\nshape check: duplicates are a small share of TTL-4 "
               "messages (expansion phase); past the convergence boundary "
               "the cache is what keeps deep floods affordable.\n";

  print_banner(std::cout, "parallel query driver: 1 thread vs hardware");
  // The whole batch above already runs through ParallelQueryDriver; this
  // section times the same workload serially and sharded to show the
  // speedup — and that per-query seeding makes the results bit-identical.
  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  FloodExperimentOptions wopts;
  wopts.replication_ratio = 0.01;
  wopts.ttl = 4;
  wopts.queries = queries;
  wopts.runs = runs;
  wopts.objects = 40;
  wopts.seed = seed;
  wopts.metrics = bench_run.metrics();
  auto scaling_phase = bench_run.phase("thread-scaling");
  Table wall({"threads", "wall ms", "speedup", "msgs/query", "success"});
  double serial_ms = 0.0;
  QueryAggregate serial_agg;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{hw}}) {
    wopts.threads = threads;
    Stopwatch timer;
    const auto agg = run_flood_batch(topology, wopts);
    const double ms = timer.millis();
    if (threads == 1) {
      serial_ms = ms;
      serial_agg = agg;
    }
    wall.add_row({Table::integer(threads), Table::num(ms, 1),
                  Table::num(serial_ms > 0.0 ? serial_ms / ms : 1.0, 2) +
                      "x",
                  Table::num(agg.mean_messages(), 1),
                  Table::percent(agg.success_rate())});
    if (threads != 1 &&
        (agg.mean_messages() != serial_agg.mean_messages() ||
         agg.success_rate() != serial_agg.success_rate())) {
      std::cerr << "error: parallel aggregate diverged from serial run\n";
      return 1;
    }
  }
  scaling_phase.stop();
  bench::emit(wall, options.csv());
  return bench_run.finish() ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
