// Extension bench — the protocol on a real lossy wire.
//
// Every other bench runs the protocol inside one process on a virtual
// clock; this one spawns `makalu_node` OS processes that speak the wire
// codec over loopback UDP, behind per-link fault shims, under a chaos
// controller that SIGKILLs a fraction of them mid-run and partitions the
// survivors. Three live cells are judged against the *in-memory*
// zero-fault ProtocolNetwork running the identical scenario (same seed
// -> same latency oracle, catalog, capacities):
//   1. zero faults  — the live stack should match the simulator: every
//      node converges, reliability counters stay ~0, queries succeed.
//   2. 5% loss + 5% crashes — the bench_compare.py floor cell.
//   3. 5% loss + 10% crashes + a 25% partition/heal — the headline
//      acceptance cell: survivors re-converge and flood success holds
//      >= 95% of the in-memory baseline.
// The per-process metric dumps (wire traffic, shim verdicts, reliability
// counters, codec rejects) are aggregated into the makalu.bench.v1 JSON
// under the cluster.* namespace.
//
// The node binary is found with --node-bin, the MAKALU_NODE_BIN env var,
// or (default) next to this bench in the build tree.
#include <unistd.h>

#include <cstdlib>

#include "bench_common.hpp"

#include "cluster/control.hpp"
#include "cluster/driver.hpp"
#include "cluster/live_node.hpp"
#include "proto/network.hpp"

namespace {

using namespace makalu;
using cluster::ClusterDriver;
using cluster::ClusterOptions;
using cluster::ClusterReport;

struct BaselineResult {
  double converged_ms = 0.0;
  double query_success = 0.0;
  std::uint64_t total_messages = 0;
};

// The simulated twin of the live cluster: same scenario derivation, same
// protocol options, perfect wire, virtual time.
BaselineResult run_inmemory_baseline(std::size_t n, std::size_t objects,
                                     double replication, std::size_t queries,
                                     std::uint8_t ttl, std::uint64_t seed,
                                     obs::MetricsRegistry* metrics) {
  const EuclideanModel latency = cluster::scenario_latency(n, seed);
  const ObjectCatalog catalog =
      cluster::scenario_catalog(n, objects, replication, seed);
  proto::ProtocolNetwork network(latency, &catalog,
                                 cluster::live_protocol_options(), seed);
  BaselineResult baseline;
  baseline.converged_ms = network.bootstrap_all();
  Rng rng(seed ^ 0xba5e11e5u);
  std::size_t hits = 0;
  for (std::size_t q = 0; q < queries; ++q) {
    const auto source = static_cast<NodeId>(rng.uniform_below(n));
    const auto object =
        static_cast<ObjectId>(rng.uniform_below(catalog.object_count()));
    hits += network.run_query(source, object, ttl).success;
  }
  baseline.query_success =
      queries == 0 ? 0.0
                   : static_cast<double>(hits) / static_cast<double>(queries);
  baseline.total_messages = network.traffic().total_messages;
  if (metrics != nullptr) {
    proto::export_traffic_metrics(network.traffic(), *metrics);
  }
  return baseline;
}

struct LiveCell {
  bool started = false;
  bool converged = false;     // bootstrap
  bool reconverged = true;    // after kills / heal (true when no chaos)
  double partition_giant = 1.0;  // survivor giant fraction mid-partition
  ClusterReport report;
};

LiveCell run_live_cell(const std::string& node_bin, std::size_t n,
                       std::size_t objects, double replication,
                       std::size_t queries, std::uint64_t seed, double drop,
                       double kill_fraction, bool exercise_partition) {
  ClusterOptions copts;
  copts.node_binary = node_bin;
  copts.node_count = n;
  copts.seed = seed;
  copts.object_count = objects;
  copts.replication_ratio = replication;
  copts.drop = drop;

  ClusterDriver driver(copts);
  LiveCell cell;
  cell.started = driver.start();
  if (!cell.started) {
    cell.report = driver.finish();
    return cell;
  }
  cell.converged = driver.converge(copts.convergence_timeout_ms);
  // First half of the queries hits the intact overlay, the second half
  // runs after the chaos, so the cell's success rate prices in both.
  (void)driver.run_queries(queries - queries / 2);
  if (kill_fraction > 0.0) {
    (void)driver.kill_fraction(kill_fraction);
    cell.reconverged = driver.converge(copts.convergence_timeout_ms);
  }
  if (exercise_partition) {
    driver.partition(0.25);
    cell.partition_giant = driver.giant_fraction();
    driver.heal();
    cell.reconverged =
        driver.converge(copts.convergence_timeout_ms) && cell.reconverged;
  }
  (void)driver.run_queries(queries / 2);
  cell.report = driver.finish();
  return cell;
}

std::uint64_t aggregate_value(const ClusterReport& report,
                              const std::string& key) {
  const auto it = report.aggregate.find(key);
  return it == report.aggregate.end() ? 0 : it->second;
}

// Folds one cell's summed per-process metric dump into the JSON report
// (cumulative-add, mirroring export_traffic_metrics).
void export_cluster_metrics(const ClusterReport& report,
                            bench::BenchRun& bench_run) {
  for (const auto& [key, value] : report.aggregate) {
    bench_run.count("cluster." + key, value);
  }
}

// Resolves the makalu_node binary: flag, env, or sibling build directory.
std::string find_node_binary(const CliOptions& options, const char* argv0) {
  if (const auto flag = options.get("node-bin")) return *flag;
  if (const char* env = std::getenv("MAKALU_NODE_BIN")) return env;
  std::string self = argv0;
  const std::size_t slash = self.rfind('/');
  self.resize(slash == std::string::npos ? 0 : slash);
  return self + "/../src/makalu_node";
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace makalu;
  const CliOptions options(argc, argv, {"node-bin"});
  const bool paper = options.paper_scale();
  const std::size_t n = options.nodes(paper ? 128 : 64);
  const std::size_t queries = options.queries(paper ? 80 : 40);
  const std::uint64_t seed = options.seed(42);
  const std::size_t objects = 64;
  // ~3 replicas per object at n=64: crash-stops then degrade query
  // success by lost *reachability*, not by wiping sole replicas — the
  // effect the >= 95%-of-baseline acceptance bar is meant to price.
  const double replication = 0.05;
  const std::uint8_t ttl = ClusterOptions{}.query_ttl;
  const std::string node_bin = find_node_binary(options, argv[0]);
  if (::access(node_bin.c_str(), X_OK) != 0) {
    std::cerr << "error: makalu_node binary not found at " << node_bin
              << " (pass --node-bin or set MAKALU_NODE_BIN)\n";
    return 1;
  }

  bench::print_config("extension: live multi-process cluster over UDP", n, 1,
                      queries, seed, paper);
  bench::BenchRun bench_run("ext_cluster", options, n, 1, queries, seed);

  auto baseline_phase = bench_run.phase("inmemory-baseline");
  const BaselineResult baseline = run_inmemory_baseline(
      n, objects, replication, queries, ttl, seed, bench_run.metrics());
  baseline_phase.stop();
  bench_run.gauge("cluster.baseline_success", baseline.query_success);

  const struct {
    const char* label;
    const char* phase;
    double drop;
    double kill_fraction;
    bool exercise_partition;
  } cells[] = {
      {"zero faults", "live-zero-fault", 0.0, 0.0, false},
      {"5% loss + 5% crashes", "live-loss-crash", 0.05, 0.05, false},
      {"5% loss + 10% crashes + part.", "live-chaos", 0.05, 0.10, true},
  };

  Table table({"cell", "spawned", "survivors", "conv.", "giant", "success",
               "vs in-mem", "retrans", "dead peers", "shim drops"});
  bool acceptance_ok = true;
  for (const auto& cfg : cells) {
    auto phase = bench_run.phase(cfg.phase);
    const LiveCell cell =
        run_live_cell(node_bin, n, objects, replication, queries, seed,
                      cfg.drop, cfg.kill_fraction, cfg.exercise_partition);
    phase.stop();
    if (!cell.started) {
      std::cerr << "error: cluster '" << cfg.label
                << "' failed to spawn/register all nodes\n";
      return 1;
    }
    const ClusterReport& report = cell.report;
    const double success = report.queries.success_rate();
    const double relative = baseline.query_success > 0.0
                                ? success / baseline.query_success
                                : 0.0;
    export_cluster_metrics(report, bench_run);
    table.add_row(
        {cfg.label, Table::integer(static_cast<long long>(report.spawned)),
         Table::integer(static_cast<long long>(report.survivors)),
         cell.converged && cell.reconverged ? "yes" : "no",
         Table::percent(report.giant_fraction), Table::percent(success),
         Table::percent(relative),
         Table::integer(static_cast<long long>(
             aggregate_value(report, "retransmissions"))),
         Table::integer(static_cast<long long>(
             aggregate_value(report, "dead_peers_detected"))),
         Table::integer(static_cast<long long>(
             aggregate_value(report, "shim_dropped")))});

    if (cfg.drop == 0.0 && cfg.kill_fraction == 0.0) {
      bench_run.gauge("cluster.zero_fault_success", success);
      bench_run.gauge("cluster.zero_fault_success_vs_baseline", relative);
    } else if (cfg.kill_fraction == 0.05) {
      // The bench_compare.py floor cell (EXPERIMENTS.md documents the
      // --require invocation that gates these two gauges).
      bench_run.gauge("cluster.success_5loss_5crash", success);
      bench_run.gauge("cluster.success_5loss_5crash_vs_baseline", relative);
      bench_run.gauge("cluster.giant_5loss_5crash", report.giant_fraction);
    } else {
      // Headline acceptance: after 5% loss, 10% SIGKILLs, and a healed
      // partition, the survivors are one component and flood success is
      // within 5% of the perfect-wire in-memory twin.
      acceptance_ok = cell.converged && cell.reconverged &&
                      report.giant_fraction >= 0.99 && relative >= 0.95;
      bench_run.gauge("cluster.success", success);
      bench_run.gauge("cluster.success_vs_inmem_baseline", relative);
      bench_run.gauge("cluster.giant_fraction", report.giant_fraction);
      bench_run.gauge("cluster.partition_giant_fraction",
                      cell.partition_giant);
      bench_run.gauge("cluster.survivors",
                      static_cast<double>(report.survivors));
      if (report.queries.succeeded > 0) {
        bench_run.gauge("cluster.mean_response_ms",
                        report.queries.total_response_ms /
                            static_cast<double>(report.queries.succeeded));
      }
    }
  }
  bench::emit(table, options.csv());
  std::cout << "\nthe zero-fault row is the transport-equivalence check: a "
               "real UDP wire with no injected faults should look like the "
               "simulator (full giant component, idle reliability "
               "counters). the chaos rows price real datagram loss, "
               "SIGKILL crash-stops, and a healed 25% partition; keepalive "
               "teardown plus re-joins keep the survivor overlay whole, so "
               "flooding keeps finding replicas.\n";
  std::cout << (acceptance_ok
                    ? "acceptance check passed: 5% loss + 10% crashes + "
                      "partition/heal kept the survivors connected at >= "
                      "95% of the in-memory baseline success.\n"
                    : "ACCEPTANCE CHECK FAILED at 5% loss + 10% crashes.\n");
  return bench_run.finish() ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
