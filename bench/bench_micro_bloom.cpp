// Microbenchmarks: Bloom filter and attenuated-Bloom-filter hot paths
// (insert, query, merge, level-weighted match scoring).
#include <benchmark/benchmark.h>

#include "bloom/attenuated_bloom_filter.hpp"
#include "bloom/bloom_filter.hpp"
#include "support/rng.hpp"

namespace {

using namespace makalu;

void BM_BloomInsert(benchmark::State& state) {
  BloomFilter filter({static_cast<std::size_t>(state.range(0)), 4});
  Rng rng(1);
  for (auto _ : state) {
    filter.insert(rng());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BloomInsert)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_BloomQueryHit(benchmark::State& state) {
  BloomFilter filter({static_cast<std::size_t>(state.range(0)), 4});
  Rng rng(2);
  std::vector<std::uint64_t> keys(512);
  for (auto& k : keys) {
    k = rng();
    filter.insert(k);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.maybe_contains(keys[i++ & 511]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BloomQueryHit)->Arg(1024)->Arg(65536);

void BM_BloomQueryMiss(benchmark::State& state) {
  BloomFilter filter({8192, 4});
  Rng fill(3);
  for (int i = 0; i < 512; ++i) filter.insert(fill());
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.maybe_contains(rng()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BloomQueryMiss);

void BM_BloomMerge(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  BloomFilter a({bits, 4});
  BloomFilter b({bits, 4});
  Rng rng(5);
  for (int i = 0; i < 256; ++i) b.insert(rng());
  for (auto _ : state) {
    a.merge(b);
    benchmark::DoNotOptimize(a);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bits / 8));
}
BENCHMARK(BM_BloomMerge)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_AbfMatchScore(benchmark::State& state) {
  AttenuatedBloomFilter abf(3, {1024, 4});
  Rng rng(6);
  for (std::size_t level = 0; level < 3; ++level) {
    for (int i = 0; i < 100; ++i) abf.insert_at(level, rng());
  }
  Rng probe(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(abf.match_score(probe()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AbfMatchScore);

void BM_AbfShiftedMerge(benchmark::State& state) {
  AttenuatedBloomFilter ours(3, {1024, 4});
  AttenuatedBloomFilter theirs(3, {1024, 4});
  Rng rng(8);
  for (int i = 0; i < 200; ++i) theirs.insert_at(0, rng());
  for (auto _ : state) {
    ours.merge_shifted_from(theirs);
    benchmark::DoNotOptimize(ours);
  }
}
BENCHMARK(BM_AbfShiftedMerge);

}  // namespace
