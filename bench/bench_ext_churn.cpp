// Extension bench — overlay quality under continuous churn.
//
// The paper evaluates one-shot failures (§3.4); deployed P2P systems face
// continuous arrival/departure. This bench runs the session-based churn
// simulator (exponential sessions/downtimes, ungraceful departures,
// re-join through the normal protocol, periodic maintenance) at three
// churn intensities and reports the overlay-health time series summary.
#include "bench_common.hpp"

#include <chrono>
#include <utility>

#include "net/latency_model.hpp"
#include "search/churn.hpp"

namespace {

// Exact-equality comparison for the deterministic-maintenance invariant:
// runs that only differ in worker count must agree on every sampled bit.
bool reports_identical(const makalu::ChurnReport& a,
                       const makalu::ChurnReport& b) {
  if (a.departures != b.departures || a.arrivals != b.arrivals ||
      a.samples.size() != b.samples.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    const auto& x = a.samples[i];
    const auto& y = b.samples[i];
    if (x.time_ms != y.time_ms || x.online != y.online ||
        x.online_components != y.online_components ||
        x.giant_fraction != y.giant_fraction ||
        x.mean_degree != y.mean_degree ||
        x.isolated_online != y.isolated_online ||
        x.search_success != y.search_success) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace makalu;
  const CliOptions options(argc, argv);
  const bool paper = options.paper_scale();
  const std::size_t n = options.nodes(paper ? 10'000 : 2'000);
  const std::uint64_t seed = options.seed(42);
  bench::print_config("extension: overlay health under continuous churn", n,
                      1, 0, seed, paper);
  bench::BenchRun bench_run("ext_churn", options, n, 1, 0, seed);

  const EuclideanModel latency(n, seed ^ 0xc0ffee);
  const OverlayBuilder builder;
  // Search sampling with single-replica objects: a query fails whenever
  // its object's one holder is offline OR routing breaks, so the column
  // couples data churn with overlay health (the availability ceiling is
  // the mean online fraction).
  const ObjectCatalog catalog(n, 30, 1.0 / static_cast<double>(n),
                              seed ^ 0xca7);

  struct Intensity {
    const char* label;
    double session_ms;
    double downtime_ms;
  };
  const Intensity intensities[] = {
      {"gentle  (120s sessions)", 120'000.0, 30'000.0},
      {"moderate (60s sessions)", 60'000.0, 20'000.0},
      {"harsh   (20s sessions)", 20'000.0, 10'000.0},
  };

  Table table({"churn", "departures", "connected samples", "worst giant",
               "min mean degree", "mean online", "search success"});
  auto intensity_phase = bench_run.phase("churn-intensities");
  for (const auto& intensity : intensities) {
    ChurnOptions copts;
    copts.mean_session_ms = intensity.session_ms;
    copts.mean_downtime_ms = intensity.downtime_ms;
    copts.duration_ms = paper ? 240'000.0 : 120'000.0;
    copts.seed = seed;
    copts.catalog = &catalog;
    copts.queries_per_sample = 25;
    copts.query_ttl = 4;
    const ChurnReport report = simulate_churn(builder, latency, copts);
    double min_degree = 1e18;
    double online_total = 0.0;
    for (const auto& s : report.samples) {
      min_degree = std::min(min_degree, s.mean_degree);
      online_total += static_cast<double>(s.online);
    }
    // mean_search_success() returns the -1.0 "not sampled" sentinel when
    // no sample ran queries; never feed that into percent().
    const double success = report.mean_search_success();
    table.add_row(
        {intensity.label,
         Table::integer(static_cast<long long>(report.departures)),
         Table::percent(report.connected_fraction()),
         Table::percent(report.worst_giant_fraction()),
         Table::num(min_degree, 1),
         Table::num(online_total /
                        static_cast<double>(report.samples.size()), 0),
         success >= 0.0 ? Table::percent(success) : "n/a"});
    bench_run.gauge(std::string("churn.worst_giant.") + intensity.label,
                    report.worst_giant_fraction());
  }
  intensity_phase.stop();
  bench::emit(table, options.csv());

  // Maintenance-path comparison: the legacy serial sweep (ratings
  // recomputed from scratch every time) against the cached deterministic
  // sweep, inline and on a worker pool. The deterministic runs must be
  // bit-identical across worker counts — that invariant is checked here
  // and any divergence fails the bench outright.
  {
    auto maintenance_phase = bench_run.phase("maintenance-comparison");
    ChurnOptions copts;
    copts.mean_session_ms = 60'000.0;
    copts.mean_downtime_ms = 20'000.0;
    copts.duration_ms = paper ? 240'000.0 : 120'000.0;
    copts.seed = seed;
    // Sweep metrics (phase timings, cache hit/miss) from the deterministic
    // runs land in the registry alongside the per-run gauges.
    copts.metrics = bench_run.metrics();
    const auto timed_run = [&](std::size_t maintenance_threads) {
      copts.maintenance_threads = maintenance_threads;
      const auto start = std::chrono::steady_clock::now();
      ChurnReport report = simulate_churn(builder, latency, copts);
      const double wall_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - start)
              .count();
      return std::make_pair(std::move(report), wall_ms);
    };
    const auto legacy = timed_run(0);
    const auto inline_run = timed_run(1);
    const auto pooled = timed_run(4);
    if (!reports_identical(inline_run.first, pooled.first)) {
      std::cerr << "FATAL: deterministic maintenance diverged between 1 "
                   "and 4 worker threads — the sweep must be "
                   "thread-count-invariant\n";
      return 1;
    }
    Table mtable({"maintenance path", "wall ms", "departures",
                  "connected samples", "worst giant"});
    const auto add = [&](const char* label,
                         const std::pair<ChurnReport, double>& run) {
      mtable.add_row(
          {label, Table::num(run.second, 0),
           Table::integer(static_cast<long long>(run.first.departures)),
           Table::percent(run.first.connected_fraction()),
           Table::percent(run.first.worst_giant_fraction())});
    };
    add("legacy serial", legacy);
    add("deterministic inline", inline_run);
    add("deterministic x4 pool", pooled);
    bench_run.gauge("churn.legacy_wall_ms", legacy.second);
    bench_run.gauge("churn.deterministic_wall_ms", inline_run.second);
    maintenance_phase.stop();
    bench::emit(mtable, options.csv());
    std::cout << "\n(sweep check passed: deterministic runs at 1 and 4 "
                 "workers produced identical reports)\n";
  }

  std::cout << "\nshape check: the giant component holds >97% of online "
               "nodes at every sample even under harsh churn — the local "
               "join/manage rules continuously repair what departures "
               "break, the dynamic counterpart of Figure 1's one-shot "
               "result. (Momentary disconnections are isolated nodes "
               "mid-rejoin, not partitions.) Search success for single-"
               "replica objects sits at its availability ceiling — the "
               "holder's online probability — i.e. routing never adds "
               "failures on top of data churn.\n";
  return bench_run.finish() ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
