// Extension bench — overlay quality under continuous churn.
//
// The paper evaluates one-shot failures (§3.4); deployed P2P systems face
// continuous arrival/departure. This bench runs the session-based churn
// simulator (exponential sessions/downtimes, ungraceful departures,
// re-join through the normal protocol, periodic maintenance) at three
// churn intensities and reports the overlay-health time series summary.
#include "bench_common.hpp"

#include "net/latency_model.hpp"
#include "search/churn.hpp"

int main(int argc, char** argv) try {
  using namespace makalu;
  const CliOptions options(argc, argv);
  const bool paper = options.paper_scale();
  const std::size_t n = options.nodes(paper ? 10'000 : 2'000);
  const std::uint64_t seed = options.seed(42);
  bench::print_config("extension: overlay health under continuous churn", n,
                      1, 0, seed, paper);

  const EuclideanModel latency(n, seed ^ 0xc0ffee);
  const OverlayBuilder builder;
  // Search sampling with single-replica objects: a query fails whenever
  // its object's one holder is offline OR routing breaks, so the column
  // couples data churn with overlay health (the availability ceiling is
  // the mean online fraction).
  const ObjectCatalog catalog(n, 30, 1.0 / static_cast<double>(n),
                              seed ^ 0xca7);

  struct Intensity {
    const char* label;
    double session_ms;
    double downtime_ms;
  };
  const Intensity intensities[] = {
      {"gentle  (120s sessions)", 120'000.0, 30'000.0},
      {"moderate (60s sessions)", 60'000.0, 20'000.0},
      {"harsh   (20s sessions)", 20'000.0, 10'000.0},
  };

  Table table({"churn", "departures", "connected samples", "worst giant",
               "min mean degree", "mean online", "search success"});
  for (const auto& intensity : intensities) {
    ChurnOptions copts;
    copts.mean_session_ms = intensity.session_ms;
    copts.mean_downtime_ms = intensity.downtime_ms;
    copts.duration_ms = paper ? 240'000.0 : 120'000.0;
    copts.seed = seed;
    copts.catalog = &catalog;
    copts.queries_per_sample = 25;
    copts.query_ttl = 4;
    const ChurnReport report = simulate_churn(builder, latency, copts);
    double min_degree = 1e18;
    double online_total = 0.0;
    for (const auto& s : report.samples) {
      min_degree = std::min(min_degree, s.mean_degree);
      online_total += static_cast<double>(s.online);
    }
    table.add_row(
        {intensity.label,
         Table::integer(static_cast<long long>(report.departures)),
         Table::percent(report.connected_fraction()),
         Table::percent(report.worst_giant_fraction()),
         Table::num(min_degree, 1),
         Table::num(online_total /
                        static_cast<double>(report.samples.size()), 0),
         Table::percent(report.mean_search_success())});
  }
  bench::emit(table, options.csv());
  std::cout << "\nshape check: the giant component holds >97% of online "
               "nodes at every sample even under harsh churn — the local "
               "join/manage rules continuously repair what departures "
               "break, the dynamic counterpart of Figure 1's one-shot "
               "result. (Momentary disconnections are isolated nodes "
               "mid-rejoin, not partitions.) Search success for single-"
               "replica objects sits at its availability ceiling — the "
               "holder's online probability — i.e. routing never adds "
               "failures on top of data churn.\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
