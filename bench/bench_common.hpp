// Shared plumbing for the experiment benches: standard option handling,
// banner/config printing, and the Makalu parameter presets matching the
// paper's two configurations.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <utility>

#include "analysis/topology_factory.hpp"
#include "obs/bench_report.hpp"
#include "obs/memory.hpp"
#include "obs/metrics.hpp"
#include "support/cli.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

namespace makalu::bench {

/// The paper's §3 topology-analysis configuration: mean node degree 10-12.
inline MakaluParameters analysis_makalu_parameters() {
  MakaluParameters p;
  p.capacity_min = 10;
  p.capacity_max = 14;
  return p;
}

/// The paper's §4/§5 search configuration: mean node degree ≈ 9.5
/// (library default).
inline MakaluParameters search_makalu_parameters() { return {}; }

inline void print_config(const std::string& name, std::size_t nodes,
                         std::size_t runs, std::size_t queries,
                         std::uint64_t seed, bool paper) {
  print_banner(std::cout, name);
  std::cout << "config: n=" << nodes << " runs=" << runs
            << " queries=" << queries << " seed=" << seed
            << (paper ? " [paper scale]" : " [laptop scale]") << "\n"
            << "(--n/--runs/--queries/--seed/--paper/--csv; paper values "
               "shown beside measurements)\n\n";
}

inline void emit(const Table& table, bool csv) {
  table.print(std::cout);
  if (csv) {
    std::cout << "\ncsv:\n";
    table.print_csv(std::cout);
  }
  std::cout.flush();
}

/// One bench run's observability bundle: a metrics registry, a
/// BenchReport (run metadata + phase spans), and the --json output path.
/// metrics() is null unless --json was given, so experiment code stays on
/// its zero-overhead path — adding a BenchRun to a bench changes nothing
/// until the flag is used. Phases are always timed (one stopwatch each);
/// finish() writes BENCH_<name>.json last thing before exit.
class BenchRun {
 public:
  BenchRun(std::string name, const CliOptions& cli, std::size_t n,
           std::size_t runs, std::size_t queries, std::uint64_t seed)
      : path_(cli.json_path()), report_(make_info(std::move(name), cli, n,
                                                  runs, queries, seed)) {}

  /// Registry to thread into experiment options; null when --json is
  /// absent (the universal "disabled" path).
  [[nodiscard]] obs::MetricsRegistry* metrics() {
    return enabled() ? &registry_ : nullptr;
  }
  [[nodiscard]] bool enabled() const { return !path_.empty(); }

  /// RAII phase span recorded into the report.
  [[nodiscard]] obs::BenchReport::Phase phase(std::string name) {
    return report_.phase(std::move(name));
  }

  /// Records a headline result value (no-ops when disabled). These are
  /// what scripts/bench_compare.py diffs across runs, so record the
  /// numbers a regression should trip on.
  void gauge(const std::string& name, double value) {
    if (!enabled()) return;
    registry_.shard(0).gauge_set(registry_.gauge(name), value);
  }
  void count(const std::string& name, std::uint64_t delta) {
    if (!enabled()) return;
    registry_.shard(0).add(registry_.counter(name), delta);
  }
  /// Memory gauge helper: records `bytes` amortized over `n` nodes (the
  /// unit bench_compare.py ceiling-gates with --require-max).
  void bytes_per_node(const std::string& name, std::size_t bytes,
                      std::size_t n) {
    if (n == 0) return;
    gauge(name, static_cast<double>(bytes) / static_cast<double>(n));
  }
  [[nodiscard]] obs::BenchReport& report() { return report_; }

  /// Writes the JSON document when --json was given. Returns false only
  /// on a write failure (missing directory, unwritable path).
  /// Every report automatically carries the process's peak RSS (MB) so
  /// memory ceilings are checkable on any bench without per-bench code.
  bool finish() {
    if (!enabled()) return true;
    if (const std::size_t peak = obs::peak_rss_bytes(); peak > 0) {
      gauge("peak_rss_mb",
            static_cast<double>(peak) / (1024.0 * 1024.0));
    }
    if (!report_.write_file(path_, registry_.snapshot())) {
      std::cerr << "error: cannot write " << path_ << "\n";
      return false;
    }
    std::cout << "\njson report: " << path_ << "\n";
    return true;
  }

 private:
  static obs::BenchRunInfo make_info(std::string name, const CliOptions& cli,
                                     std::size_t n, std::size_t runs,
                                     std::size_t queries,
                                     std::uint64_t seed) {
    obs::BenchRunInfo info;
    info.bench = std::move(name);
    info.n = n;
    info.runs = runs;
    info.queries = queries;
    info.seed = seed;
    info.threads = static_cast<std::size_t>(cli.get_int("threads", 0));
    if (info.threads == 0) info.threads = std::thread::hardware_concurrency();
    info.paper = cli.paper_scale();
    return info;
  }

  std::string path_;
  obs::MetricsRegistry registry_;
  obs::BenchReport report_;
};

}  // namespace makalu::bench
