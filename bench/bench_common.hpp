// Shared plumbing for the experiment benches: standard option handling,
// banner/config printing, and the Makalu parameter presets matching the
// paper's two configurations.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "analysis/topology_factory.hpp"
#include "support/cli.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

namespace makalu::bench {

/// The paper's §3 topology-analysis configuration: mean node degree 10-12.
inline MakaluParameters analysis_makalu_parameters() {
  MakaluParameters p;
  p.capacity_min = 10;
  p.capacity_max = 14;
  return p;
}

/// The paper's §4/§5 search configuration: mean node degree ≈ 9.5
/// (library default).
inline MakaluParameters search_makalu_parameters() { return {}; }

inline void print_config(const std::string& name, std::size_t nodes,
                         std::size_t runs, std::size_t queries,
                         std::uint64_t seed, bool paper) {
  print_banner(std::cout, name);
  std::cout << "config: n=" << nodes << " runs=" << runs
            << " queries=" << queries << " seed=" << seed
            << (paper ? " [paper scale]" : " [laptop scale]") << "\n"
            << "(--n/--runs/--queries/--seed/--paper/--csv; paper values "
               "shown beside measurements)\n\n";
}

inline void emit(const Table& table, bool csv) {
  table.print(std::cout);
  if (csv) {
    std::cout << "\ncsv:\n";
    table.print_csv(std::cout);
  }
  std::cout.flush();
}

}  // namespace makalu::bench
