// Figure 2 — Messages per query vs network size (log-log), 1% replication,
// fixed TTL 4.
//
// Paper: the curve grows sub-linearly — increasing the network two orders
// of magnitude (1k → 100k) increases messages/query by only ~2.6x. We
// print the series plus the growth exponent fitted on the log-log points.
#include <cmath>

#include "bench_common.hpp"

#include "analysis/flood_experiments.hpp"
#include "analysis/paper_reference.hpp"
#include "net/latency_model.hpp"

int main(int argc, char** argv) try {
  using namespace makalu;
  const CliOptions options(argc, argv);
  const bool paper = options.paper_scale();
  const std::size_t runs = options.runs(2);
  const std::size_t queries = options.queries(paper ? 500 : 200);
  const std::uint64_t seed = options.seed(42);

  std::vector<std::size_t> sizes{100, 200, 500, 1'000, 2'000,
                                 5'000, 10'000, 20'000};
  if (paper) sizes.push_back(100'000);
  // --n caps the sweep (smoke runs): keep sizes <= n. At least two points
  // survive so the log-log slope below stays well-defined.
  if (options.has("n")) {
    const std::size_t cap = options.nodes(sizes.back());
    while (sizes.size() > 2 && sizes.back() > cap) sizes.pop_back();
  }
  bench::print_config("fig 2: messages/query vs network size (1% repl, "
                      "TTL 4, log-log)",
                      sizes.back(), runs, queries, seed, paper);
  bench::BenchRun bench_run("fig2_messages_vs_size", options, sizes.back(),
                            runs, queries, seed);

  Table table({"n", "msgs/query", "success", "msgs growth vs prev",
               "n growth vs prev"});
  std::vector<std::pair<double, double>> loglog;
  double prev_msgs = 0.0;
  std::size_t prev_n = 0;
  for (const std::size_t n : sizes) {
    auto size_phase = bench_run.phase("n=" + std::to_string(n));
    const EuclideanModel latency(n, seed ^ (0xf16 + n));
    TopologyFactoryOptions topo;
    topo.makalu = bench::search_makalu_parameters();
    const auto topology =
        build_topology(TopologyKind::kMakalu, latency, seed, topo);
    FloodExperimentOptions fopts;
    fopts.replication_ratio = 0.01;
    fopts.ttl = 4;
    fopts.queries = queries;
    fopts.runs = runs;
    fopts.objects = 30;
    fopts.seed = seed;
    fopts.metrics = bench_run.metrics();
    const auto agg = run_flood_batch(topology, fopts);
    const double msgs = agg.mean_messages();
    loglog.emplace_back(std::log10(static_cast<double>(n)),
                        std::log10(std::max(1.0, msgs)));
    table.add_row(
        {Table::integer(static_cast<long long>(n)), Table::num(msgs, 1),
         Table::percent(agg.success_rate()),
         prev_n ? Table::num(msgs / prev_msgs, 2) + "x" : "-",
         prev_n ? Table::num(static_cast<double>(n) /
                                 static_cast<double>(prev_n), 2) + "x"
                : "-"});
    prev_msgs = msgs;
    prev_n = n;
  }
  bench::emit(table, options.csv());

  // Least-squares slope on the log-log points = growth exponent.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (const auto& [x, y] : loglog) {
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const auto m = static_cast<double>(loglog.size());
  const double slope = (m * sxy - sx * sy) / (m * sxx - sx * sx);
  std::cout << "\nlog-log growth exponent: " << Table::num(slope, 3)
            << "  (sub-linear scaling requires < 1; paper: x100 nodes => "
               "x" << paper::kMessageGrowth100x
            << " messages, i.e. exponent ~0.2)\n";
  return bench_run.finish() ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
