// Extension bench — the protocol under injected faults.
//
// bench_ext_protocol shows the message-level protocol on a perfect wire;
// this binary breaks the wire on purpose. A FaultPlan subjects every
// transmission to message loss and schedules crash-stop failures into
// the middle of the bootstrap join storm, and the robustness layer
// (handshake retries, walk retries, Ping/Pong keepalive with dead-peer
// teardown, half-open reconciliation) has to dig the overlay out. The
// sweep reports, per (loss rate x crash fraction) cell:
//   1. whether the survivors still converge to a connected overlay,
//   2. what the recovery machinery costs in control traffic,
//   3. how much flooded-query success degrades vs the fault-free run.
// A second table drives the same FaultPlan through the churn simulator
// (crash-stop departures + lossy re-join handshakes).
#include "bench_common.hpp"

#include "graph/algorithms.hpp"
#include "net/latency_model.hpp"
#include "proto/network.hpp"
#include "search/churn.hpp"

namespace {

using namespace makalu;
using namespace makalu::proto;

struct CellResult {
  bool survivors_connected = false;
  double giant_fraction = 0.0;
  double converged_ms = 0.0;
  std::size_t crashed = 0;
  std::uint64_t control_bytes = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t dead_peers = 0;
  std::uint64_t half_open = 0;
  std::uint64_t dropped = 0;
  double query_success = 0.0;
};

CellResult run_cell(const LatencyModel& latency, const ObjectCatalog& catalog,
                    std::size_t n, std::size_t queries, std::uint64_t seed,
                    double loss, double crash_fraction,
                    obs::MetricsRegistry* metrics) {
  ProtocolOptions popts;
  const bool faulty = loss > 0.0 || crash_fraction > 0.0;
  popts.robustness.enabled = faulty;
  ProtocolNetwork network(latency, &catalog, popts, seed);
  if (faulty) {
    LinkFaultOptions link;
    link.loss = loss;
    FaultPlan plan(link, seed ^ 0xfa117u);
    // Crashes land inside the join storm, so handshakes and walks die
    // mid-flight — the adversarial case the timers exist for.
    plan.schedule_random_crashes(n, crash_fraction, 0.0,
                                 static_cast<double>(n) *
                                     popts.join_spacing_ms);
    network.attach_fault_plan(std::move(plan));
  }

  CellResult cell;
  cell.converged_ms = network.bootstrap_all();
  const auto& t = network.traffic();
  cell.control_bytes = t.total_bytes;
  cell.retransmissions = t.retransmissions;
  cell.dead_peers = t.dead_peers_detected;
  cell.half_open = t.half_open_repairs;
  cell.dropped = t.dropped_messages + t.crash_drops;

  // Overlay health among the survivors: crashed nodes are dead weight by
  // definition, so connectivity is judged on the live induced subgraph.
  const Graph overlay = network.overlay_snapshot();
  const std::vector<bool> crashed = network.crashed_mask();
  for (NodeId v = 0; v < n; ++v) cell.crashed += crashed[v];
  const Graph live = overlay.remove_nodes(crashed, nullptr);
  const auto comps = connected_components(CsrGraph::from_graph(live));
  cell.survivors_connected = comps.count <= 1;
  cell.giant_fraction = static_cast<double>(comps.largest_size()) /
                        static_cast<double>(live.node_count());

  // Flooded queries from live sources (a crashed source cannot ask).
  Rng rng(seed ^ 0x9e77u);
  std::size_t hits = 0;
  for (std::size_t q = 0; q < queries; ++q) {
    NodeId source = kInvalidNode;
    do {
      source = static_cast<NodeId>(rng.uniform_below(n));
    } while (crashed[source]);
    const auto object =
        static_cast<ObjectId>(rng.uniform_below(catalog.object_count()));
    hits += network.run_query(source, object, 4).success;
  }
  cell.query_success =
      static_cast<double>(hits) / static_cast<double>(queries);
  // export_traffic_metrics is cumulative-add, so calling it once per
  // finished cell aggregates the whole grid's wire traffic (including the
  // PR-4 reliability counters) into the JSON report.
  if (metrics != nullptr) {
    export_traffic_metrics(network.traffic(), *metrics);
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace makalu;
  const CliOptions options(argc, argv);
  const bool paper = options.paper_scale();
  const std::size_t n = options.nodes(paper ? 1'000 : 400);
  const std::size_t queries = options.queries(paper ? 80 : 40);
  const std::uint64_t seed = options.seed(42);
  bench::print_config("extension: fault tolerance under loss and crashes",
                      n, 1, queries, seed, paper);
  bench::BenchRun bench_run("ext_fault_tolerance", options, n, 1, queries,
                            seed);

  const EuclideanModel latency(n, seed ^ 0x9047);
  const ObjectCatalog catalog(n, 20, 0.01, seed ^ 5);

  const double losses[] = {0.0, 0.02, 0.05, 0.10};
  const double crash_fractions[] = {0.0, 0.05, 0.10};

  // Fault-free baseline first; every cell is judged against it.
  auto grid_phase = bench_run.phase("fault-grid");
  const CellResult baseline = run_cell(latency, catalog, n, queries, seed,
                                       0.0, 0.0, bench_run.metrics());

  Table table({"loss", "crashes", "survivors conn.", "giant", "success",
               "vs baseline", "retrans", "dead peers", "half-open",
               "ctrl bytes x"});
  bool acceptance_cell_ok = true;
  for (const double loss : losses) {
    for (const double crash : crash_fractions) {
      const CellResult cell =
          (loss == 0.0 && crash == 0.0)
              ? baseline
              : run_cell(latency, catalog, n, queries, seed, loss, crash,
                         bench_run.metrics());
      const double relative =
          baseline.query_success > 0.0
              ? cell.query_success / baseline.query_success
              : 0.0;
      table.add_row(
          {Table::percent(loss), Table::percent(crash),
           cell.survivors_connected ? "yes" : "no",
           Table::percent(cell.giant_fraction),
           Table::percent(cell.query_success), Table::percent(relative),
           Table::integer(static_cast<long long>(cell.retransmissions)),
           Table::integer(static_cast<long long>(cell.dead_peers)),
           Table::integer(static_cast<long long>(cell.half_open)),
           Table::num(static_cast<double>(cell.control_bytes) /
                          static_cast<double>(baseline.control_bytes),
                      2)});
      // Headline claim: 5% loss + 5% mid-bootstrap crashes still yields a
      // connected survivor overlay and >= 80% of baseline flood success.
      if (loss == 0.05 && crash == 0.05) {
        acceptance_cell_ok =
            cell.giant_fraction >= 0.99 && relative >= 0.8;
        bench_run.gauge("fault.acceptance_giant", cell.giant_fraction);
        bench_run.gauge("fault.acceptance_success_vs_baseline", relative);
      }
    }
  }
  grid_phase.stop();
  bench_run.gauge("fault.baseline_success", baseline.query_success);
  bench::emit(table, options.csv());
  std::cout << "\nretries and keepalive teardowns repair what the faults "
               "break: the survivor overlay stays (near-)connected and "
               "flooding keeps finding replicas, at the price of the "
               "retransmission/reconciliation traffic in the right-hand "
               "columns.\n";
  std::cout << (acceptance_cell_ok
                    ? "acceptance check passed: 5% loss + 5% crashes kept "
                      "the survivors connected at >= 80% of baseline "
                      "search success.\n"
                    : "ACCEPTANCE CHECK FAILED at 5% loss + 5% crashes.\n");

  // --- churn with a FaultPlan ------------------------------------------------
  print_banner(std::cout, "churn with crash-stop failures and lossy joins");
  auto churn_phase = bench_run.phase("churn-with-faults");
  const OverlayBuilder builder;
  Table churn_table({"faults", "crashes", "failed joins", "departures",
                     "worst giant", "search success"});
  const struct {
    const char* label;
    double loss;
    double crash_fraction;
  } churn_cells[] = {
      {"none", 0.0, 0.0},
      {"5% loss", 0.05, 0.0},
      {"5% crashes", 0.0, 0.05},
      {"5% loss + 5% crashes", 0.05, 0.05},
  };
  for (const auto& cfg : churn_cells) {
    ChurnOptions copts;
    copts.seed = seed;
    copts.duration_ms = paper ? 240'000.0 : 120'000.0;
    copts.catalog = &catalog;
    copts.queries_per_sample = 20;
    if (cfg.loss > 0.0 || cfg.crash_fraction > 0.0) {
      LinkFaultOptions link;
      link.loss = cfg.loss;
      FaultPlan plan(link, seed ^ 0xc4a5u);
      plan.schedule_random_crashes(n, cfg.crash_fraction, 0.0,
                                   copts.duration_ms);
      copts.faults = std::move(plan);
    }
    const ChurnReport report = simulate_churn(builder, latency, copts);
    const double success = report.mean_search_success();
    churn_table.add_row(
        {cfg.label, Table::integer(static_cast<long long>(report.crashes)),
         Table::integer(static_cast<long long>(report.failed_joins)),
         Table::integer(static_cast<long long>(report.departures)),
         Table::percent(report.worst_giant_fraction()),
         success >= 0.0 ? Table::percent(success) : "n/a"});
  }
  churn_phase.stop();
  bench::emit(churn_table, options.csv());
  std::cout << "\ncrash-stop nodes never return, so the availability "
               "ceiling drops with every crash; lossy joins show up as "
               "failed-join retries, not as lost connectivity, because "
               "the retry keeps the node isolated-but-queued rather than "
               "half-joined.\n";
  return bench_run.finish() ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
