// bench_ext_workload: open-loop heavy traffic against the scale overlay.
//
// The paper's traffic model (§5 / Table 2) is closed-loop — a ~60 q/s
// trace replayed one query at a time, so the system can never fall
// behind. This bench asks the open-loop question the ROADMAP north star
// needs answered: at what offered rate does the overlay saturate, and
// what latency do clients see on the way there? Four measured cells over
// one hard-cutoff scale-free overlay (Guclu & Yuksel, the PR-7/8 1M-node
// substrate) with a Zipf-popular content catalog routed by blocked
// counting-ABF tables:
//
//   saturation   multiplicative ramp + geometric bisection of the offered
//                Poisson rate until completed/offered drops below 0.9
//                (workload/saturation.hpp); the at-saturation probe
//                reports p50/p99/p999 sojourn from the obs histogram.
//   profiles     bursty (MMPP-2), diurnal, and the paper's closed-loop
//                preset at half the saturation rate: same demand stream,
//                different arrival timing — tail latency is the delta.
//   determinism  the same open-loop stream re-run at 1/2/8 driver
//                threads and twice at one: aggregates must match exactly
//                (the engine's determinism ladder, DESIGN.md §16).
//                Divergence hard-fails the bench.
//   churn-waves  catalog birth/death/drift applied through incremental
//                counting-ABF insert/remove waves at fixed stream
//                indices while the open-loop stream runs; measures
//                us/replica-change against a full rebuild and spot-checks
//                superset soundness of the maintained table.
//
// Timing gauges (saturation_qps, *_ms) are wall-clock honest and
// machine-dependent by design; per-query aggregates inside every cell
// are bit-identical per the determinism ladder. JSON gauges are gated in
// CI via bench_compare.py --require / --require-max (EXPERIMENTS.md).
#include "bench_common.hpp"

#include <cmath>

#include "search/abf_search.hpp"
#include "topology/generators.hpp"
#include "workload/arrival.hpp"
#include "workload/catalog.hpp"
#include "workload/engine.hpp"
#include "workload/saturation.hpp"

namespace {

using namespace makalu;

/// Exact-equality check between two aggregates of the same stream. Both
/// fold in stream order, so even the double-valued means must match to
/// the last bit — any drift means the determinism ladder broke.
bool aggregates_identical(const QueryAggregate& a, const QueryAggregate& b) {
  return a.queries() == b.queries() &&
         a.success_rate() == b.success_rate() &&
         a.mean_messages() == b.mean_messages() &&
         a.mean_duplicates() == b.mean_duplicates() &&
         a.mean_nodes_visited() == b.mean_nodes_visited() &&
         a.mean_replicas_found() == b.mean_replicas_found() &&
         a.hit_hops().mean() == b.hit_hops().mean();
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace makalu;
  const CliOptions options(argc, argv, {"objects"});
  const bool paper = options.paper_scale();
  const std::size_t n = options.nodes(paper ? 100'000 : 20'000);
  const std::size_t runs = options.runs(1);
  const std::size_t queries = options.queries(4'000);
  const std::uint64_t seed = options.seed(42);
  const auto threads =
      static_cast<std::size_t>(options.get_int("threads", 0));
  const auto objects =
      static_cast<std::size_t>(options.get_int("objects", 512));
  bench::print_config("ext: open-loop heavy-traffic workload", n, runs,
                      queries, seed, paper);
  bench::BenchRun bench_run("ext_workload", options, n, runs, queries, seed);

  // --- build: hard-cutoff overlay + Zipf catalog + counting-ABF router --
  auto build_phase = bench_run.phase("build-overlay");
  PowerLawParameters plp;
  plp.min_degree = 2;
  plp.hard_cutoff_factor = 1.0;  // degree cap sqrt(n)
  plp.storage = GraphStorage::kCompact;
  const Graph g = PowerLawGenerator(plp).generate(n, seed ^ 0x90a7ULL);
  const CsrGraph csr = CsrGraph::from_graph(g);

  workload::ZipfCatalogOptions zopts;
  zopts.objects = objects;
  zopts.zipf_exponent = 0.8;
  zopts.replicas_per_object = 4;
  zopts.seed = seed ^ 0x21fULL;
  workload::ZipfCatalog zipf(n, zopts);

  AbfOptions aopts;
  aopts.layout = TableLayout::kBlockedDelta;
  // Content catalog, not 64-key identifier search: size the per-level
  // filters up so hub-adjacent base stacks keep useful selectivity.
  aopts.blocked_level_bits = 1024;
  aopts.counting_maintenance = true;  // the incremental-remove churn path
  Stopwatch build_timer;
  AbfRouter router(csr, zipf.catalog(), aopts);
  bench_run.gauge("workload.abf_build_ms", build_timer.millis());
  bench_run.gauge("workload.abf_table_mb",
                  static_cast<double>(router.table_bytes()) /
                      (1024.0 * 1024.0));
  build_phase.stop();

  const auto zipf_sampler = [&zipf](Rng& rng) { return zipf.sample(rng); };

  // --- saturation search ------------------------------------------------
  auto sat_phase = bench_run.phase("saturation-search");
  workload::DriverQueryBackend::Options backend_options;
  backend_options.seed = seed ^ 0x5a7ULL;
  backend_options.threads = threads;
  backend_options.batch = true;
  backend_options.object_sampler = zipf_sampler;
  backend_options.metrics = bench_run.metrics();
  workload::DriverQueryBackend backend(router, zipf.catalog(),
                                       backend_options);

  workload::SaturationOptions sopts;
  sopts.start_qps = 1000.0;
  sopts.probe_queries = queries;
  sopts.arrival_seed = seed ^ 0xa77ULL;
  sopts.probe.metrics = bench_run.metrics();
  const workload::SaturationReport sat =
      workload::find_saturation(backend, sopts);
  sat_phase.stop();

  Table probes({"probe", "offered q/s", "completed q/s", "completed/offered",
                "verdict"});
  for (std::size_t i = 0; i < sat.probes.size(); ++i) {
    const auto& p = sat.probes[i];
    probes.add_row({Table::integer(static_cast<long long>(i)),
                    Table::num(p.offered_qps, 0),
                    Table::num(p.completed_qps, 0),
                    Table::num(p.completed_fraction, 3),
                    p.passed ? "pass" : "fail"});
  }
  bench::emit(probes, options.csv());

  const workload::OpenLoopReport& at_sat = sat.at_saturation;
  bench_run.gauge("workload.saturation_qps", sat.saturation_qps);
  bench_run.gauge("workload.saturation_bracketed", sat.bracketed ? 1.0 : 0.0);
  bench_run.gauge("workload.p50_ms", at_sat.p50_ms);
  bench_run.gauge("workload.p99_ms", at_sat.p99_ms);
  bench_run.gauge("workload.p999_ms", at_sat.p999_ms);
  bench_run.gauge("workload.mean_sojourn_ms", at_sat.mean_sojourn_ms);
  bench_run.gauge("workload.max_queue_depth",
                  static_cast<double>(at_sat.max_queue_depth));
  bench_run.gauge("workload.messages_per_query",
                  at_sat.aggregate.mean_messages());
  bench_run.gauge("workload.success", at_sat.aggregate.success_rate());
  std::cout << "\nsaturation: " << Table::num(sat.saturation_qps, 0)
            << " q/s (" << (sat.bracketed ? "bracketed" : "ramp-limited")
            << ", " << sat.probes.size() << " probes); at saturation p50/"
            << "p99/p999 sojourn = " << Table::num(at_sat.p50_ms, 2) << "/"
            << Table::num(at_sat.p99_ms, 2) << "/"
            << Table::num(at_sat.p999_ms, 2) << " ms, "
            << Table::num(at_sat.aggregate.mean_messages(), 1)
            << " msgs/query, success "
            << Table::percent(at_sat.aggregate.success_rate()) << ".\n\n";

  // --- arrival profiles at half the saturation rate ---------------------
  auto profile_phase = bench_run.phase("arrival-profiles");
  const double cruise_qps =
      sat.saturation_qps > 0.0 ? 0.5 * sat.saturation_qps : 100.0;
  Table profiles({"arrivals", "nominal q/s", "measured q/s",
                  "completed/offered", "p50 ms", "p99 ms", "p999 ms"});
  const auto profile_row = [&](workload::ArrivalProcess& arrivals,
                               const std::string& gauge_prefix) {
    workload::OpenLoopEngine engine(backend);
    const workload::OpenLoopReport rep =
        engine.run(arrivals, queries, {});
    profiles.add_row({std::string(arrivals.name()),
                      Table::num(arrivals.nominal_qps(), 0),
                      Table::num(rep.offered_qps, 0),
                      Table::num(rep.completed_fraction(), 3),
                      Table::num(rep.p50_ms, 2), Table::num(rep.p99_ms, 2),
                      Table::num(rep.p999_ms, 2)});
    bench_run.gauge(gauge_prefix + "_p50_ms", rep.p50_ms);
    bench_run.gauge(gauge_prefix + "_p99_ms", rep.p99_ms);
    bench_run.gauge(gauge_prefix + "_p999_ms", rep.p999_ms);
  };
  {
    const auto poisson =
        workload::poisson_arrivals(cruise_qps, seed ^ 0x11ULL);
    profile_row(*poisson, "workload.poisson");
    workload::BurstyOptions bopts;
    bopts.rate_qps = cruise_qps;
    const auto bursty = workload::bursty_arrivals(bopts, seed ^ 0x12ULL);
    profile_row(*bursty, "workload.bursty");
    workload::DiurnalOptions dopts;
    dopts.rate_qps = cruise_qps;
    // Two full "days" over the run's horizon.
    dopts.period_ms =
        1000.0 * static_cast<double>(queries) / cruise_qps / 2.0;
    const auto diurnal = workload::diurnal_arrivals(dopts, seed ^ 0x13ULL);
    profile_row(*diurnal, "workload.diurnal");
    // The paper's replay model through the same interface: 3.23 q/s
    // fixed spacing — the overlay idles between queries, the closed-loop
    // baseline every open-loop number above is an answer to.
    const auto paper_arrivals =
        workload::closed_loop_paper_arrivals(gnutella_traffic_2006());
    profile_row(*paper_arrivals, "workload.paper");
  }
  profile_phase.stop();
  bench::emit(profiles, options.csv());

  // --- determinism self-check ------------------------------------------
  // Same stream at 1/2/8 driver threads plus a same-thread repeat: the
  // ladder says every aggregate is exactly equal however service is
  // scheduled. A mismatch is a correctness bug, not noise — hard-fail.
  auto det_phase = bench_run.phase("determinism-check");
  std::vector<QueryAggregate> det_runs;
  for (const std::size_t det_threads : {1UL, 1UL, 2UL, 8UL}) {
    workload::DriverQueryBackend::Options det_options = backend_options;
    det_options.threads = det_threads;
    det_options.metrics = nullptr;
    workload::DriverQueryBackend det_backend(router, zipf.catalog(),
                                             det_options);
    const auto arrivals =
        workload::poisson_arrivals(cruise_qps, seed ^ 0xdeULL);
    workload::OpenLoopEngine engine(det_backend);
    det_runs.push_back(engine.run(*arrivals, queries, {}).aggregate);
  }
  det_phase.stop();
  for (std::size_t i = 1; i < det_runs.size(); ++i) {
    if (!aggregates_identical(det_runs[0], det_runs[i])) {
      std::cerr << "error: open-loop aggregates diverged across thread "
                   "counts / repeats (determinism ladder broken)\n";
      return 1;
    }
  }
  bench_run.gauge("workload.determinism_ok", 1.0);
  std::cout << "determinism: aggregates identical across 1/2/8 driver "
               "threads and a same-seed repeat.\n\n";

  // --- catalog churn through incremental counting-ABF waves -------------
  // Churn boundaries land at fixed stream indices (the engine cuts
  // admission slices there), every replica change goes through
  // notify_insert/notify_remove — never a rebuild — and the wave cost is
  // measured right where it is paid.
  auto churn_phase = bench_run.phase("churn-waves");
  constexpr std::size_t kChurnStepsPerBoundary = 8;
  double wave_seconds = 0.0;
  std::size_t replica_changes = 0;
  std::size_t boundaries = 0;
  workload::OpenLoopOptions churn_options;
  churn_options.churn_every_queries = std::max<std::size_t>(1, queries / 32);
  churn_options.churn_hook = [&](std::uint64_t) {
    ++boundaries;
    Stopwatch wave_timer;
    for (std::size_t step = 0; step < kChurnStepsPerBoundary; ++step) {
      replica_changes += zipf.churn_step(&router);
    }
    wave_seconds += wave_timer.seconds();
  };
  const auto churn_arrivals =
      workload::poisson_arrivals(cruise_qps, seed ^ 0xc4ULL);
  workload::OpenLoopEngine churn_engine(backend);
  const workload::OpenLoopReport churn_rep =
      churn_engine.run(*churn_arrivals, queries, churn_options);
  churn_phase.stop();

  const double wave_us = replica_changes > 0
                             ? wave_seconds * 1e6 /
                                   static_cast<double>(replica_changes)
                             : 0.0;

  // Soundness spot-check on the maintained state, before rebuild()
  // replaces it: the incrementally-maintained base must be a superset of
  // a fresh build's over the post-churn catalog (counting saturation
  // widens filters, never drops true bits — a missing bit would be a
  // false negative, i.e. a real bug).
  {
    const AbfRouter fresh(csr, zipf.catalog(), aopts);
    const BlockedAbfTable& live = *router.blocked_table();
    const BlockedAbfTable& want = *fresh.blocked_table();
    for (std::uint32_t v = 0; v < n; ++v) {
      for (std::size_t l = 0; l < live.depth(); ++l) {
        const std::uint64_t* lw = live.level_words(v, l);
        const std::uint64_t* ww = want.level_words(v, l);
        for (std::size_t w = 0; w < live.words_per_level(); ++w) {
          if ((lw[w] | ww[w]) != lw[w]) {
            std::cerr << "error: maintained ABF table dropped bits a fresh "
                         "rebuild has (false negative after churn)\n";
            return 1;
          }
        }
      }
    }
  }
  bench_run.gauge("workload.churn_sound", 1.0);

  // The per-change price a non-counting table would pay instead.
  auto rebuild_phase = bench_run.phase("rebuild-reference");
  Stopwatch rebuild_timer;
  router.rebuild();
  const double rebuild_us = rebuild_timer.seconds() * 1e6;
  rebuild_phase.stop();

  const workload::ZipfCatalog::ChurnCounters& cc = zipf.churn_counters();
  bench_run.gauge("workload.abf_update_wave_us", wave_us);
  bench_run.gauge("workload.abf_rebuild_us", rebuild_us);
  bench_run.gauge("workload.wave_speedup_vs_rebuild",
                  wave_us > 0.0 ? rebuild_us / wave_us : 0.0);
  bench_run.gauge("workload.churn_replica_changes",
                  static_cast<double>(replica_changes));
  bench_run.gauge("workload.churn_success",
                  churn_rep.aggregate.success_rate());

  Table churn({"cell", "value"});
  churn.add_row({"churn boundaries",
                 Table::integer(static_cast<long long>(boundaries))});
  churn.add_row({"births / deaths / drifts",
                 Table::integer(static_cast<long long>(cc.births)) + " / " +
                     Table::integer(static_cast<long long>(cc.deaths)) +
                     " / " +
                     Table::integer(static_cast<long long>(cc.drifts))});
  churn.add_row({"replica changes",
                 Table::integer(static_cast<long long>(replica_changes))});
  churn.add_row({"wave us/change", Table::num(wave_us, 1)});
  churn.add_row({"full rebuild us", Table::num(rebuild_us, 0)});
  churn.add_row({"wave speedup vs rebuild",
                 Table::num(wave_us > 0.0 ? rebuild_us / wave_us : 0.0, 0) +
                     "x"});
  churn.add_row({"success under churn",
                 Table::percent(churn_rep.aggregate.success_rate())});
  bench::emit(churn, options.csv());

  std::cout << "\ncatalog churn rode " << boundaries
            << " fixed-index boundaries through incremental counting-ABF "
               "waves (no rebuild on the churn path); superset soundness "
               "and below-saturation rebuild equality are pinned by "
               "tests/workload_test.cpp and the counting suites.\n";
  return bench_run.finish() ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
