// Microbench: scalar vs shared-frontier batched flooding
// (search/batched_flood).
//
// Same engine, same catalog, same per-query RNG jobs — the only variable
// is whether FloodEngine::run_many co-schedules the queries through the
// 64-wide epoch-stamped visited words and coalesced frontiers. Results
// are bit-identical by contract (pinned by the batched differential
// suite; re-checked here), so `micro_flood.speedup` measures pure
// hot-path win, gated >=5x via bench_compare.py --require (see
// EXPERIMENTS.md).
#include "bench_common.hpp"

#include <vector>

#include "net/latency_model.hpp"
#include "search/flood_search.hpp"
#include "sim/replica_placement.hpp"

int main(int argc, char** argv) try {
  using namespace makalu;
  const CliOptions options(argc, argv);
  const bool paper = options.paper_scale();
  const std::size_t n = options.nodes(paper ? 100'000 : 20'000);
  const std::size_t runs = options.runs(3);
  const std::size_t queries = options.queries(paper ? 300 : 150);
  const std::uint64_t seed = options.seed(42);
  bench::print_config("micro: batched flood frontiers", n, runs, queries,
                      seed, paper);
  bench::BenchRun bench_run("micro_flood_batch", options, n, runs, queries,
                            seed);

  auto build_phase = bench_run.phase("build-overlay");
  const EuclideanModel latency(n, seed ^ 0xf10);
  TopologyFactoryOptions topo;
  topo.makalu = bench::search_makalu_parameters();
  const auto topology =
      build_topology(TopologyKind::kMakalu, latency, seed, topo);
  const CsrGraph csr = CsrGraph::from_graph(topology.graph);
  const ObjectCatalog catalog(n, 40, 0.01, seed ^ 0xca7);
  FloodOptions flood;
  flood.ttl = 4;
  const FloodEngine engine(csr, flood);

  // One fixed job list: sources, objects, and RNG states drawn up front
  // so both code paths replay the exact same queries.
  Rng draw(seed ^ 0x0b5);
  std::vector<BatchQueryJob> jobs(queries);
  for (std::size_t q = 0; q < queries; ++q) {
    jobs[q] = {static_cast<NodeId>(draw.uniform_below(n)),
               static_cast<ObjectId>(draw.uniform_below(40)), Rng(draw())};
  }
  std::vector<QueryResult> scalar_results(queries);
  std::vector<QueryResult> batched_results(queries);
  build_phase.stop();

  Table table({"mode", "wall ms", "queries/s", "speedup", "msgs/query"});
  double scalar_ms = 0.0;
  double batched_ms = 0.0;
  QueryWorkspace workspace;
  for (const bool batch : {false, true}) {
    auto phase =
        bench_run.phase(batch ? "batched-floods" : "scalar-floods");
    double best_ms = 0.0;
    for (std::size_t rep = 0; rep < runs; ++rep) {  // min-of-runs timing
      QueryResult* out =
          batch ? batched_results.data() : scalar_results.data();
      Stopwatch timer;
      if (batch) {
        engine.run_many(jobs, catalog, workspace, out);
      } else {
        // The scalar baseline: exactly what SearchEngine::run_many's
        // default loop does (one run() per job).
        for (std::size_t q = 0; q < queries; ++q) {
          workspace.rng() = jobs[q].rng;
          out[q] = engine.run(jobs[q].source, jobs[q].object, catalog,
                              workspace);
        }
      }
      const double ms = timer.millis();
      if (rep == 0 || ms < best_ms) best_ms = ms;
    }
    phase.stop();
    (batch ? batched_ms : scalar_ms) = best_ms;
    double mean_messages = 0.0;
    const auto& results = batch ? batched_results : scalar_results;
    for (const QueryResult& r : results) {
      mean_messages += static_cast<double>(r.messages);
    }
    mean_messages /= static_cast<double>(queries);
    const double qps = static_cast<double>(queries) / (best_ms / 1000.0);
    table.add_row({batch ? "batched (64-wide frontiers)" : "scalar",
                   Table::num(best_ms, 1), Table::num(qps, 0),
                   Table::num(batch ? scalar_ms / batched_ms : 1.0, 2) +
                       "x",
                   Table::num(mean_messages, 1)});
    bench_run.gauge(batch ? "micro_flood.qps_batched"
                          : "micro_flood.qps_scalar",
                    qps);
  }
  bench_run.gauge("micro_flood.speedup", scalar_ms / batched_ms);

  // Field-for-field equality over every query — the bit-identity contract
  // the differential tests pin, re-asserted on the bench's own workload.
  for (std::size_t q = 0; q < queries; ++q) {
    const QueryResult& a = scalar_results[q];
    const QueryResult& b = batched_results[q];
    if (a.success != b.success || a.messages != b.messages ||
        a.duplicates != b.duplicates ||
        a.nodes_visited != b.nodes_visited ||
        a.first_hit_hop != b.first_hit_hop ||
        a.replicas_found != b.replicas_found ||
        a.forwarders != b.forwarders || a.truncated != b.truncated) {
      std::cerr << "error: batched result diverged at query " << q << "\n";
      return 1;
    }
  }
  bench::emit(table, options.csv());
  std::cout << "\nbit-identical results, one visited-word load per "
               "(node, 64 queries) instead of one per (node, query).\n";
  return bench_run.finish() ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
