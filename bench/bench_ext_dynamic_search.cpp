// Extension bench — the search mechanisms the paper discusses but does
// not evaluate, run against the same Makalu overlay:
//
//  1. TTL-selection policies (§6's Chang & Liu integration): fixed TTL vs
//     expanding ring vs randomized ladder, across replication ratios.
//  2. Flood/gossip hybrid (§4.4's epidemic suggestion): deterministic
//     flooding to the convergence boundary, probabilistic beyond it.
//  3. k-walker random walks (Lv et al., the related-work baseline §6
//     contrasts with flooding).
#include "bench_common.hpp"

#include "search/flood_search.hpp"
#include "search/gossip_flood.hpp"
#include "search/random_walk_search.hpp"
#include "search/ttl_policy.hpp"
#include "net/latency_model.hpp"
#include "sim/replica_placement.hpp"
#include "support/stats.hpp"

namespace {

using namespace makalu;

struct Accumulator {
  std::size_t queries = 0;
  std::size_t hits = 0;
  OnlineStats messages;

  void add(bool success, std::uint64_t msgs) {
    ++queries;
    hits += success;
    messages.add(static_cast<double>(msgs));
  }
  [[nodiscard]] double success() const {
    return queries ? static_cast<double>(hits) /
                         static_cast<double>(queries)
                   : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) try {
  using namespace makalu;
  const CliOptions options(argc, argv);
  const bool paper = options.paper_scale();
  const std::size_t n = options.nodes(paper ? 100'000 : 20'000);
  const std::size_t queries = options.queries(paper ? 400 : 200);
  const std::uint64_t seed = options.seed(42);
  bench::print_config("extension: dynamic TTL, gossip, random walks", n, 1,
                      queries, seed, paper);
  bench::BenchRun bench_run("ext_dynamic_search", options, n, 1, queries,
                            seed);

  auto build_phase = bench_run.phase("build-overlay");
  const EuclideanModel latency(n, seed ^ 0xd15c);
  const MakaluOverlay overlay = OverlayBuilder().build(latency, seed);
  const CsrGraph csr = CsrGraph::from_graph(overlay.graph);
  build_phase.stop();

  // --- 1. TTL policies -----------------------------------------------------
  auto ttl_phase = bench_run.phase("ttl-policies");
  print_banner(std::cout, "TTL policies (messages include failed rings)");
  Table ttl_table({"replication", "policy", "success", "msgs/query",
                   "attempts/query"});
  FloodEngine flood(csr);
  for (const double percent : {1.0, 0.1, 0.01}) {
    const ObjectCatalog catalog(n, 30, percent / 100.0, seed ^ 21);
    const FixedTtlPolicy fixed(4);
    const ExpandingRingPolicy ring({1, 2, 3, 4});
    const RandomizedTtlPolicy randomized({2, 3, 4}, 0.5);
    const TtlPolicy* policies[] = {&fixed, &ring, &randomized};
    for (const TtlPolicy* policy : policies) {
      Rng rng(seed ^ 31);
      Accumulator acc;
      OnlineStats attempts;
      for (std::size_t q = 0; q < queries; ++q) {
        const auto source = static_cast<NodeId>(rng.uniform_below(n));
        const auto object = static_cast<ObjectId>(rng.uniform_below(30));
        const auto r =
            run_with_policy(flood, *policy, source, object, catalog, rng);
        acc.add(r.success, r.total_messages);
        attempts.add(static_cast<double>(r.attempts));
      }
      ttl_table.add_row({Table::num(percent, 2) + "%", policy->name(),
                         Table::percent(acc.success()),
                         Table::num(acc.messages.mean(), 1),
                         Table::num(attempts.mean(), 2)});
      bench_run.gauge("ttl_policy." + std::string(policy->name()) + "." +
                          Table::num(percent, 2) + "pct.msgs",
                      acc.messages.mean());
    }
  }
  ttl_phase.stop();
  bench::emit(ttl_table, options.csv());
  std::cout << "\nexpanding ring wins big on popular objects (most queries "
               "stop at ring 1-2) and costs ~2x on rare ones (failed rings "
               "are re-paid); the randomized ladder hedges between the "
               "two, as Chang & Liu predict.\n";

  // --- 2. Flood/gossip hybrid ----------------------------------------------
  auto gossip_phase = bench_run.phase("gossip-hybrid");
  print_banner(std::cout,
               "flood/gossip hybrid past the convergence boundary");
  Table gossip_table({"mechanism", "success", "msgs/query", "dup fraction"});
  {
    const ObjectCatalog catalog(n, 20, 0.0001, seed ^ 41);  // rare objects
    FloodOptions deep;
    deep.ttl = 6;
    Rng rng(seed ^ 51);
    QueryAggregate flood_agg;
    for (std::size_t q = 0; q < queries / 2; ++q) {
      const auto source = static_cast<NodeId>(rng.uniform_below(n));
      const auto object = static_cast<ObjectId>(rng.uniform_below(20));
      flood_agg.add(flood.run(source, object, catalog, deep));
    }
    gossip_table.add_row({"flood TTL 6",
                          Table::percent(flood_agg.success_rate()),
                          Table::num(flood_agg.mean_messages(), 1),
                          Table::percent(flood_agg.duplicate_fraction())});
    GossipFloodEngine gossip(csr);
    for (const double p : {0.6, 0.4, 0.25}) {
      GossipFloodOptions gopts;
      gopts.ttl = 6;
      gopts.boundary_hops = 4;
      gopts.gossip_probability = p;
      Rng grng(seed ^ 51);
      QueryAggregate agg;
      for (std::size_t q = 0; q < queries / 2; ++q) {
        const auto source = static_cast<NodeId>(grng.uniform_below(n));
        const auto object = static_cast<ObjectId>(grng.uniform_below(20));
        agg.add(gossip.run(source, object, catalog, grng, gopts));
      }
      gossip_table.add_row(
          {"gossip p=" + Table::num(p, 2) + " past hop 4",
           Table::percent(agg.success_rate()),
           Table::num(agg.mean_messages(), 1),
           Table::percent(agg.duplicate_fraction())});
    }
  }
  gossip_phase.stop();
  bench::emit(gossip_table, options.csv());
  std::cout << "\ngossip prunes exactly the post-boundary transmissions "
               "that would have been duplicates: large message savings for "
               "a small, tunable success cost.\n";

  // --- 3. Random-walk baseline ----------------------------------------------
  auto walk_phase = bench_run.phase("random-walks");
  print_banner(std::cout, "k-walker random walk (related-work baseline)");
  Table walk_table({"mechanism", "replication", "success", "msgs/query"});
  RandomWalkEngine walker(csr);
  for (const double percent : {1.0, 0.1}) {
    const ObjectCatalog catalog(n, 20, percent / 100.0, seed ^ 61);
    Rng rng(seed ^ 71);
    Accumulator walk_acc;
    Accumulator flood_acc;
    for (std::size_t q = 0; q < queries / 2; ++q) {
      const auto source = static_cast<NodeId>(rng.uniform_below(n));
      const auto object = static_cast<ObjectId>(rng.uniform_below(20));
      RandomWalkOptions wopts;
      wopts.walkers = 16;
      wopts.ttl = 64;
      const auto w = walker.run(source, object, catalog, rng, wopts);
      walk_acc.add(w.success, w.messages);
      FloodOptions fopts;
      fopts.ttl = 4;
      const auto f = flood.run(source, object, catalog, fopts);
      flood_acc.add(f.success, f.messages);
    }
    walk_table.add_row({"16 walkers x 64 steps",
                        Table::num(percent, 1) + "%",
                        Table::percent(walk_acc.success()),
                        Table::num(walk_acc.messages.mean(), 1)});
    walk_table.add_row({"flood TTL 4", Table::num(percent, 1) + "%",
                        Table::percent(flood_acc.success()),
                        Table::num(flood_acc.messages.mean(), 1)});
    bench_run.gauge("walk.success." + Table::num(percent, 1) + "pct",
                    walk_acc.success());
  }
  walk_phase.stop();
  bench::emit(walk_table, options.csv());
  std::cout << "\nwalks trade messages for recall and latency — they shine "
               "on popular objects and fall behind floods on rare ones, "
               "which is why the paper keeps flooding as the wild-card "
               "mechanism and adds ABF routing for identifiers.\n";
  return bench_run.finish() ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
