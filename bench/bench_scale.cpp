// Scale bench — build, churn, and query a large Makalu overlay on one box,
// measuring memory honestly (ISSUE 7 / ROADMAP "million-node scale").
//
// For each selected storage policy (adjacency-set vector-of-vectors vs the
// compact RowArena CSR) the bench:
//   1. builds the overlay with OverlayBuilder::build_sharded (parallel
//      bootstrap plan, serial seeded apply, deterministic sweeps),
//   2. runs a churn episode: 10% of nodes fail (isolate), one maintenance
//      sweep repairs the survivors, the failed nodes come back online and
//      a second sweep re-absorbs them,
//   3. warms a rating cache over every node (the steady-state management
//      footprint) and measures graph + cache bytes per node,
//   4. answers a batched flood-query workload through the shared
//      ParallelQueryDriver.
// When both policies run (the default below the memory wall), the bench
// verifies they produced the *identical* overlay — same edge count, same
// degree sequence, bitwise-equal query aggregates — and fails hard on any
// divergence: the storage layer must be an invisible representation
// choice. 1M-node runs use --storage compact (the adjacency build at 1M
// is exactly the wall this PR removes).
//
// Headline gauges (bench_compare.py material):
//   scale.bytes_per_node.{adjacency,compact}        graph + cache + capacities
//   scale.graph_bytes_per_node.* / scale.cache_bytes_per_node.*
//   scale.bytes_per_node_reduction                  adjacency / compact
//   scale.build_ms.* / scale.churn_sweep_ms.* / scale.query_qps.*
//   scale.abf_table_mb / scale.abf_bytes_per_arc    blocked ABF routing table
//   scale.abf_table_reduction / scale.abf_query_qps (hard-cutoff topology)
//   peak_rss_mb                                     (automatic, BenchRun)
// Ceiling-gate with e.g.:
//   scripts/bench_compare.py base.json new.json
//       --require 'scale.bytes_per_node_reduction>=4'
//       --require-max 'scale.abf_table_mb<=8'
//       --require-max 'peak_rss_mb<=16384'
#include "bench_common.hpp"

#include <chrono>
#include <cmath>
#include <optional>
#include <vector>

#include "analysis/parallel_query_driver.hpp"
#include "net/latency_model.hpp"
#include "search/abf_search.hpp"
#include "search/flood_search.hpp"
#include "support/thread_pool.hpp"
#include "topology/generators.hpp"

namespace {

using namespace makalu;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct PolicyResult {
  const char* label = "";
  double build_ms = 0.0;
  double churn_sweep_ms = 0.0;
  double query_qps = 0.0;
  std::size_t edges = 0;
  std::size_t graph_bytes = 0;
  std::size_t cache_bytes = 0;
  std::size_t total_bytes = 0;
  std::vector<std::size_t> degrees;
  QueryAggregate aggregate;
};

PolicyResult run_policy(GraphStorage storage, const char* label,
                        std::size_t n, std::uint64_t seed,
                        std::size_t queries, ThreadPool& pool,
                        bench::BenchRun& bench_run) {
  PolicyResult out;
  out.label = label;

  const EuclideanModel latency(n, seed ^ 0x5ca1ab1eULL);
  MakaluParameters params = bench::search_makalu_parameters();
  params.storage = storage;
  const OverlayBuilder builder(params);

  auto start = std::chrono::steady_clock::now();
  MakaluOverlay overlay = builder.build_sharded(latency, seed, &pool,
                                                bench_run.metrics());
  out.build_ms = ms_since(start);

  Graph& g = overlay.graph;

  // Churn episode under a persistent rating cache (RatingStore::kAuto:
  // pooled summaries for compact storage, heap entries for adjacency —
  // each policy pays its own real steady-state cost).
  {
    CachedRatingEngine cache(g, latency, params.weights);
    // Deterministic 10% fault draw.
    std::vector<bool> online(n, true);
    Rng fault_rng(seed ^ 0xdeadfa11ULL);
    const std::size_t failures = n / 10;
    std::size_t failed = 0;
    while (failed < failures) {
      const auto u = static_cast<NodeId>(fault_rng.uniform_below(n));
      if (!online[u]) continue;
      online[u] = false;
      ++failed;
    }
    start = std::chrono::steady_clock::now();
    for (NodeId u = 0; u < n; ++u) {
      if (!online[u]) g.isolate(u);
    }
    {
      // Survivors repair among themselves...
      SweepOptions sweep;
      sweep.seed = seed ^ 0x0ff1ceULL;
      sweep.active = &online;
      sweep.pool = &pool;
      sweep.metrics = bench_run.metrics();
      builder.deterministic_sweep(overlay, cache, sweep);
    }
    {
      // ...then the failed tenth comes back online and is re-absorbed.
      SweepOptions sweep;
      sweep.seed = seed ^ 0xbacca1aULL;
      sweep.pool = &pool;
      sweep.metrics = bench_run.metrics();
      builder.deterministic_sweep(overlay, cache, sweep);
    }
    out.churn_sweep_ms = ms_since(start);

    // Steady-state memory: warm every node's cache entry (management
    // touches all of them over time), then measure. compact_storage()
    // first so the graph side is its post-quiescence tight layout.
    g.compact_storage();
    for (NodeId u = 0; u < n; ++u) {
      if (g.degree(u) > 0) (void)cache.view_for(u);
    }
    out.graph_bytes = g.memory_footprint();
    out.cache_bytes = cache.memory_footprint();
    out.total_bytes = out.graph_bytes + out.cache_bytes +
                      overlay.capacity.capacity() * sizeof(std::size_t);
  }

  out.edges = g.edge_count();
  out.degrees = g.degree_sequence();

  // Batched query workload over the CSR snapshot (storage-independent by
  // construction — from_graph sorts rows — so identical aggregates here
  // pin the *graphs* being identical).
  const CsrGraph csr = CsrGraph::from_graph(g);
  const ObjectCatalog catalog(n, 64, 0.0005, seed ^ 0xca7a106eULL);
  FloodOptions flood;
  flood.ttl = 4;
  const FloodEngine engine(csr, flood);
  const ParallelQueryDriver driver(0);
  BatchQueryOptions batch;
  batch.queries = queries;
  batch.seed = seed ^ 0x9e37ULL;
  batch.batch = true;
  batch.metrics = bench_run.metrics();
  start = std::chrono::steady_clock::now();
  out.aggregate = driver.run_batch(engine, catalog, batch);
  const double query_ms = ms_since(start);
  out.query_qps = query_ms > 0.0
                      ? static_cast<double>(queries) / (query_ms / 1000.0)
                      : 0.0;
  return out;
}

bool results_identical(const PolicyResult& a, const PolicyResult& b) {
  return a.edges == b.edges && a.degrees == b.degrees &&
         a.aggregate.queries() == b.aggregate.queries() &&
         a.aggregate.success_rate() == b.aggregate.success_rate() &&
         a.aggregate.mean_messages() == b.aggregate.mean_messages() &&
         a.aggregate.mean_nodes_visited() ==
             b.aggregate.mean_nodes_visited() &&
         a.aggregate.mean_replicas_found() ==
             b.aggregate.mean_replicas_found();
}

}  // namespace

int main(int argc, char** argv) try {
  const CliOptions options(argc, argv, {"storage"});
  const bool paper = options.paper_scale();
  const std::size_t n = options.nodes(paper ? 100'000 : 10'000);
  const std::size_t queries = options.queries(paper ? 2'000 : 500);
  const std::uint64_t seed = options.seed(42);
  const std::string storage_arg =
      options.get("storage").value_or("both");
  const bool run_adjacency =
      storage_arg == "both" || storage_arg == "adjacency";
  const bool run_compact =
      storage_arg == "both" || storage_arg == "compact";
  if (!run_adjacency && !run_compact) {
    std::cerr << "error: --storage must be adjacency, compact, or both\n";
    return 2;
  }
  bench::print_config("scale: build/churn/query one large overlay", n, 1,
                      queries, seed, paper);
  std::cout << "storage: " << storage_arg
            << " (--storage=adjacency|compact|both)\n\n";
  bench::BenchRun bench_run("scale", options, n, 1, queries, seed);
  ThreadPool pool(
      static_cast<std::size_t>(options.get_int("threads", 0)));

  std::optional<PolicyResult> adjacency;
  std::optional<PolicyResult> compact;
  if (run_adjacency) {
    auto phase = bench_run.phase("adjacency");
    adjacency = run_policy(GraphStorage::kAdjacencySet, "adjacency-set", n,
                           seed, queries, pool, bench_run);
  }
  if (run_compact) {
    auto phase = bench_run.phase("compact");
    compact = run_policy(GraphStorage::kCompact, "compact CSR/arena", n,
                         seed, queries, pool, bench_run);
  }

  Table table({"storage", "build ms", "churn sweep ms", "query qps",
               "graph B/node", "cache B/node", "total B/node"});
  const auto per_node = [n](std::size_t bytes) {
    return static_cast<double>(bytes) / static_cast<double>(n);
  };
  const auto add_row = [&](const PolicyResult& r, const char* key) {
    table.add_row({r.label, Table::num(r.build_ms, 0),
                   Table::num(r.churn_sweep_ms, 0),
                   Table::num(r.query_qps, 0),
                   Table::num(per_node(r.graph_bytes), 1),
                   Table::num(per_node(r.cache_bytes), 1),
                   Table::num(per_node(r.total_bytes), 1)});
    bench_run.gauge(std::string("scale.build_ms.") + key, r.build_ms);
    bench_run.gauge(std::string("scale.churn_sweep_ms.") + key,
                    r.churn_sweep_ms);
    bench_run.gauge(std::string("scale.query_qps.") + key, r.query_qps);
    bench_run.bytes_per_node(
        std::string("scale.graph_bytes_per_node.") + key, r.graph_bytes, n);
    bench_run.bytes_per_node(
        std::string("scale.cache_bytes_per_node.") + key, r.cache_bytes, n);
    bench_run.bytes_per_node(std::string("scale.bytes_per_node.") + key,
                             r.total_bytes, n);
  };
  if (adjacency) add_row(*adjacency, "adjacency");
  if (compact) add_row(*compact, "compact");
  bench::emit(table, options.csv());

  if (adjacency && compact) {
    const bool identical = results_identical(*adjacency, *compact);
    bench_run.gauge("scale.divergence", identical ? 0.0 : 1.0);
    if (!identical) {
      std::cerr << "\nFATAL: adjacency-set and compact storage produced "
                   "different overlays — the storage policy must be "
                   "representation-only\n";
      bench_run.finish();
      return 1;
    }
    const double reduction =
        static_cast<double>(adjacency->total_bytes) /
        static_cast<double>(compact->total_bytes);
    bench_run.gauge("scale.bytes_per_node_reduction", reduction);
    std::cout << "\nstorage check passed: both policies built the "
                 "identical overlay (edge count, degree sequence, and "
                 "query aggregates all equal).\n"
              << "bytes/node reduction (graph + rating cache + "
                 "capacities): "
              << Table::num(reduction, 2) << "x\n";
  }

  // --- ABF identifier search at scale --------------------------------------
  // The paper's depth-3 search on a hard-cutoff scale-free topology
  // (Guclu & Yuksel: degree cap sqrt(n), so hubs grow with the network —
  // the regime where per-arc tables blow up). The blocked/delta layout
  // keeps the whole routing table at ~64 B per node plus sparse deltas;
  // `scale.abf_table_mb` is the ceiling-gated headline (<= 8 MB at 100k),
  // with the legacy per-arc extrapolation alongside for the reduction.
  {
    auto abf_phase = bench_run.phase("abf-hardcutoff");
    PowerLawParameters plp;
    plp.min_degree = 2;
    plp.hard_cutoff_factor = 1.0;  // cap = sqrt(n)
    plp.storage = GraphStorage::kCompact;
    Graph hc = PowerLawGenerator(plp).generate(n, seed ^ 0xabfULL);
    const CsrGraph csr = CsrGraph::from_graph(hc);
    const std::size_t arcs = 2 * hc.edge_count();
    const ObjectCatalog catalog(n, 64, 0.005, seed ^ 0xab1ULL);
    AbfOptions aopts;
    aopts.layout = TableLayout::kBlockedDelta;  // auto width: 1 line/node
    // Memory-floor configuration: base stacks only. Per-arc deltas are
    // the paid precision option (fig4 and the differential corpus run and
    // quality-gate them); at min-degree-2 power-law scale they cost ~4.5
    // entries/arc (~18 B/arc) — an order of magnitude over the 8 MB
    // table ceiling — while the base layout alone already routes with no
    // false negatives.
    aopts.delta_cap = 0;
    auto start = std::chrono::steady_clock::now();
    AbfRouter router(csr, catalog, aopts);
    const double abf_build_ms = ms_since(start);

    const double table_mb = static_cast<double>(router.table_bytes()) /
                            (1024.0 * 1024.0);
    const double bytes_per_arc =
        static_cast<double>(router.table_bytes()) /
        static_cast<double>(arcs);
    // What the exact per-arc layout would cost here (depth x 1024-bit
    // levels per arc, the pre-PR default).
    const double legacy_mb =
        static_cast<double>(arcs) * 3.0 * (1024.0 / 8.0) /
        (1024.0 * 1024.0);

    const ParallelQueryDriver abf_driver(0);
    BatchQueryOptions abf_batch;
    abf_batch.queries = queries;
    abf_batch.seed = seed ^ 0x8eaULL;
    abf_batch.batch = true;
    abf_batch.metrics = bench_run.metrics();
    start = std::chrono::steady_clock::now();
    const QueryAggregate agg =
        abf_driver.run_batch(router, catalog, abf_batch);
    const double abf_query_ms = ms_since(start);
    const double abf_qps =
        abf_query_ms > 0.0
            ? static_cast<double>(queries) / (abf_query_ms / 1000.0)
            : 0.0;

    bench_run.gauge("scale.abf_build_ms", abf_build_ms);
    bench_run.gauge("scale.abf_table_mb", table_mb);
    bench_run.gauge("scale.abf_bytes_per_arc", bytes_per_arc);
    bench_run.gauge("scale.abf_legacy_table_mb", legacy_mb);
    bench_run.gauge("scale.abf_table_reduction", legacy_mb / table_mb);
    bench_run.gauge("scale.abf_query_qps", abf_qps);
    bench_run.gauge("scale.abf_success", agg.success_rate());

    Table abf({"topology", "arcs", "build ms", "table MB", "B/arc",
               "legacy MB", "query qps", "success"});
    abf.add_row({"hard-cutoff scale-free",
                 Table::integer(static_cast<long long>(arcs)),
                 Table::num(abf_build_ms, 0), Table::num(table_mb, 2),
                 Table::num(bytes_per_arc, 1), Table::num(legacy_mb, 1),
                 Table::num(abf_qps, 0), Table::percent(agg.success_rate())});
    bench::emit(abf, options.csv());
    std::cout << "\nABF routing table: " << Table::num(table_mb, 2)
              << " MB blocked/delta vs " << Table::num(legacy_mb, 1)
              << " MB per-arc extrapolation ("
              << Table::num(legacy_mb / table_mb, 1)
              << "x). Ceiling-gate with --require-max "
                 "'scale.abf_table_mb<=8' at 100k.\n";
    abf_phase.stop();
  }

  const std::size_t rss = obs::peak_rss_bytes();
  if (rss > 0) {
    std::cout << "peak RSS: "
              << Table::num(static_cast<double>(rss) / (1024.0 * 1024.0), 0)
              << " MB\n";
  }
  std::cout << "\nshape check: the compact arena stores a neighbor row as "
               "12 descriptor bytes plus ~4 bytes per edge endpoint in "
               "one shared slab, where the adjacency-set pays a 24-byte "
               "vector header plus a private heap chunk per node; the "
               "pooled rating store keeps an 8-byte {worst, boundary} "
               "summary per node instead of a per-node heap vector of "
               "32-byte records (persisted score rows never hit in sweep "
               "workloads — every pick_victim follows an invalidating "
               "edge change). Together that is the >= 4x bytes/node "
               "headroom that lets one box hold a 1M-node overlay.\n";
  return bench_run.finish() ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
