// Microbench: incremental ABF table maintenance vs from-scratch rebuild.
//
// The blocked layout's churn story (DESIGN.md §14): notify_insert is a
// depth-bounded 0->1 position wave plus sole-contributor delta rescans,
// and with AbfOptions::counting_maintenance, notify_remove drains a
// counting-filter decrement wave instead of rebuilding. Both are pinned
// *equal* to a rebuild by the soundness suites; this bench measures what
// that equality buys — ops/sec on the incremental paths against the
// rebuild a legacy table would pay per content change.
//
// Experiment-bench shape (makalu.bench.v1 JSON, bench_smoke ctest label);
// gauges gated via bench_compare.py --require (see EXPERIMENTS.md).
#include "bench_common.hpp"

#include "search/abf_search.hpp"
#include "sim/replica_placement.hpp"
#include "topology/generators.hpp"

int main(int argc, char** argv) try {
  using namespace makalu;
  const CliOptions options(argc, argv);
  const bool paper = options.paper_scale();
  const std::size_t n = options.nodes(paper ? 20'000 : 4'000);
  const std::size_t runs = options.runs(3);
  // `queries` doubles as the churn-op count per timed section.
  const std::size_t ops = options.queries(400);
  const std::uint64_t seed = options.seed(42);
  constexpr std::size_t kObjects = 32;
  bench::print_config("micro: ABF incremental update vs rebuild", n, runs,
                      ops, seed, paper);
  bench::BenchRun bench_run("micro_abf_update", options, n, runs, ops,
                            seed);

  auto build_phase = bench_run.phase("build-tables");
  PowerLawParameters plp;
  plp.min_degree = 2;
  plp.max_degree = 60;
  const Graph g = PowerLawGenerator(plp).generate(n, seed ^ 0x90a7ULL);
  const CsrGraph csr = CsrGraph::from_graph(g);
  ObjectCatalog catalog(n, kObjects, 0.01, seed ^ 0xca7ULL);
  AbfOptions aopts;
  aopts.layout = TableLayout::kBlockedDelta;
  aopts.blocked_level_bits = 256;
  aopts.counting_maintenance = true;
  Stopwatch build_timer;
  AbfRouter router(csr, catalog, aopts);
  bench_run.gauge("micro_abf_update.build_ms", build_timer.millis());
  build_phase.stop();

  Table table({"path", "ops", "wall ms", "ops/s", "vs rebuild"});

  // Rebuild cost first: the per-change price a monotone (non-counting)
  // table pays for any content removal, and the baseline both
  // incremental paths are compared against. min-of-runs timing.
  auto rebuild_phase = bench_run.phase("full-rebuild");
  double rebuild_ms = 0.0;
  for (std::size_t rep = 0; rep < runs; ++rep) {
    Stopwatch timer;
    router.rebuild();
    const double ms = timer.millis();
    if (rep == 0 || ms < rebuild_ms) rebuild_ms = ms;
  }
  rebuild_phase.stop();
  bench_run.gauge("micro_abf_update.rebuild_ms", rebuild_ms);
  table.add_row({"full rebuild", "1", Table::num(rebuild_ms, 2),
                 Table::num(1000.0 / rebuild_ms, 1), "1.00x"});

  // Additive churn: publish ops new replicas one at a time through the
  // insert wave. Catalog mutations are deliberately inside the timed
  // region — a real churn event pays both.
  auto insert_phase = bench_run.phase("insert-wave");
  Rng rng(seed ^ 0x1f5ULL);
  std::vector<std::pair<ObjectId, NodeId>> added;
  added.reserve(ops);
  Stopwatch insert_timer;
  while (added.size() < ops) {
    const auto object = static_cast<ObjectId>(rng.uniform_below(kObjects));
    const auto node = static_cast<NodeId>(rng.uniform_below(n));
    // Skip pairs already placed: add_replica would no-op on the catalog
    // while the notify wave re-counted the key, desyncing the mirror.
    if (catalog.node_has_object(node, object)) continue;
    catalog.add_replica(object, node);
    router.notify_insert(node, object);
    added.emplace_back(object, node);
  }
  const double insert_ms = insert_timer.millis();
  insert_phase.stop();
  const double insert_ops =
      static_cast<double>(ops) / (insert_ms / 1000.0);
  const double insert_speedup = insert_ops * rebuild_ms / 1000.0;
  bench_run.gauge("micro_abf_update.insert_ops_per_sec", insert_ops);
  bench_run.gauge("micro_abf_update.insert_speedup_vs_rebuild",
                  insert_speedup);
  table.add_row({"notify_insert wave", Table::integer(
                     static_cast<long long>(ops)),
                 Table::num(insert_ms, 2), Table::num(insert_ops, 0),
                 Table::num(insert_speedup, 0) + "x"});

  // Subtractive churn: retract the same replicas through the counting
  // decrement wave (the path that exists only under
  // counting_maintenance).
  auto remove_phase = bench_run.phase("remove-wave");
  Stopwatch remove_timer;
  for (const auto& [object, node] : added) {
    if (catalog.remove_replica(object, node)) {
      router.notify_remove(node, object);
    }
  }
  const double remove_ms = remove_timer.millis();
  remove_phase.stop();
  const double remove_ops =
      static_cast<double>(added.size()) / (remove_ms / 1000.0);
  const double remove_speedup = remove_ops * rebuild_ms / 1000.0;
  bench_run.gauge("micro_abf_update.remove_ops_per_sec", remove_ops);
  bench_run.gauge("micro_abf_update.remove_speedup_vs_rebuild",
                  remove_speedup);
  table.add_row({"notify_remove (counting)", Table::integer(
                     static_cast<long long>(added.size())),
                 Table::num(remove_ms, 2), Table::num(remove_ops, 0),
                 Table::num(remove_speedup, 0) + "x"});

  bench::emit(table, options.csv());

  // Soundness spot-check on the final state. Exact rebuild equality is a
  // below-saturation contract (pinned by tests/counting_abf_test.cpp on
  // sparse graphs); on a hub-heavy power-law topology 2-hop walk counts
  // exceed the 4-bit counter cap and sticky saturation legitimately
  // leaves extra bits. What must hold REGARDLESS of saturation is the
  // one-sided guarantee: the maintained base is a superset of a fresh
  // rebuild's (saturation widens filters, never drops true bits — a
  // missing bit would be a false negative, i.e. a real bug).
  AbfRouter fresh(csr, catalog, aopts);
  const BlockedAbfTable& live = *router.blocked_table();
  const BlockedAbfTable& want = *fresh.blocked_table();
  bool sound = true;
  for (std::uint32_t v = 0; sound && v < n; ++v) {
    for (std::size_t l = 0; l < live.depth(); ++l) {
      const std::uint64_t* lw = live.level_words(v, l);
      const std::uint64_t* ww = want.level_words(v, l);
      for (std::size_t w = 0; w < live.words_per_level(); ++w) {
        if ((lw[w] | ww[w]) != lw[w]) {
          sound = false;
          break;
        }
      }
    }
  }
  std::size_t saturated = 0;
  std::size_t counters = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    for (std::size_t l = 0; l < router.depth(); ++l) {
      for (const std::uint8_t c :
           router.counting_table()->level(v, l).counters()) {
        ++counters;
        saturated += c >= CountingBloomFilter::kSaturation;
      }
    }
  }
  const double saturated_ppm = counters > 0
                                   ? 1e6 * static_cast<double>(saturated) /
                                         static_cast<double>(counters)
                                   : 0.0;
  bench_run.gauge("micro_abf_update.sound", sound ? 1.0 : 0.0);
  bench_run.gauge("micro_abf_update.saturated_counter_ppm", saturated_ppm);
  if (!sound) {
    std::cerr << "error: incrementally-maintained table dropped bits a "
                 "fresh rebuild has (false negative)\n";
    return 1;
  }
  std::cout << "\nsoundness: maintained base is a superset of a fresh "
               "rebuild (no false negatives); "
            << Table::num(saturated_ppm, 1)
            << " ppm of counters saturated (sticky, widens filters "
               "only).\n";
  std::cout << "\nincremental waves touch the depth-" << router.depth()
            << " ball around the change instead of every arc; exact "
               "rebuild equality below saturation is pinned by the "
               "counting soundness suite.\n";
  return bench_run.finish() ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
