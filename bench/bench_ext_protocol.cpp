// Extension bench — the message-level protocol run end to end.
//
// Everything else in bench/ studies the overlay as a graph; this binary
// runs the actual distributed protocol over the discrete-event engine and
// reports what only a wire-level view can show:
//   1. the emergent overlay's quality vs the direct (graph-level) builder,
//   2. the control-traffic bill of overlay construction, per message type,
//   3. query response latency with physical link latencies and
//      reverse-path query hits.
#include "bench_common.hpp"

#include "graph/algorithms.hpp"
#include "graph/metrics.hpp"
#include "net/latency_model.hpp"
#include "proto/network.hpp"
#include "spectral/laplacian.hpp"
#include "support/stats.hpp"

int main(int argc, char** argv) try {
  using namespace makalu;
  using namespace makalu::proto;
  const CliOptions options(argc, argv);
  const bool paper = options.paper_scale();
  const std::size_t n = options.nodes(paper ? 5'000 : 1'500);
  const std::size_t queries = options.queries(paper ? 100 : 40);
  const std::uint64_t seed = options.seed(42);
  bench::print_config("extension: message-level protocol simulation", n, 1,
                      queries, seed, paper);
  bench::BenchRun bench_run("ext_protocol", options, n, 1, queries, seed);

  const EuclideanModel latency(n, seed ^ 0x9047);
  const ObjectCatalog catalog(n, 20, 0.01, seed ^ 5);

  // --- 1. emergent vs direct overlay ---------------------------------------
  auto bootstrap_phase = bench_run.phase("bootstrap");
  ProtocolNetwork network(latency, &catalog, ProtocolOptions{}, seed);
  Stopwatch wall;
  const double converged_ms = network.bootstrap_all();
  const double build_wall_s = wall.seconds();
  bootstrap_phase.stop();
  bench_run.gauge("proto.converged_ms", converged_ms);

  const Graph emergent = network.overlay_snapshot();
  const MakaluOverlay direct = OverlayBuilder().build(latency, seed);

  Table quality({"overlay", "connected", "mean degree", "diameter",
                 "lambda_1"});
  auto add_quality_row = [&](const char* label, const Graph& graph) {
    const CsrGraph csr = CsrGraph::from_graph(graph);
    PathMetricsOptions pm;
    pm.include_costs = false;
    const auto metrics = compute_path_metrics(csr, pm);
    quality.add_row({label, is_connected(csr) ? "yes" : "no",
                     Table::num(degree_stats(csr).mean, 2),
                     Table::integer(metrics.diameter_hops),
                     Table::num(algebraic_connectivity(csr), 3)});
  };
  add_quality_row("emergent (message-level)", emergent);
  add_quality_row("direct (graph-level builder)", direct.graph);
  bench::emit(quality, options.csv());
  std::cout << "\nthe distributed protocol converges to the same "
               "expander-grade overlay the direct builder computes "
               "(simulated convergence: "
            << Table::num(converged_ms / 1000.0, 1) << " s of network "
            << "time, " << Table::num(build_wall_s, 1)
            << " s wall clock).\n";

  // --- 2. control-traffic bill ----------------------------------------------
  print_banner(std::cout, "overlay-construction control traffic");
  const auto& traffic = network.traffic();
  // The per-type message/byte counts and the PR-4 reliability counters
  // flow into the JSON report through the same registry the tables below
  // print from — bench_compare can then gate on the control-traffic bill.
  if (bench_run.enabled()) {
    export_traffic_metrics(traffic, *bench_run.metrics());
  }
  Table bill({"message type", "count", "bytes", "bytes/node"});
  const Payload samples[] = {ConnectRequest{}, ConnectAccept{},
                             ConnectReject{},  Disconnect{},
                             TableUpdate{},    WalkProbe{},
                             CandidateReply{}, Query{},
                             QueryHit{},       Ping{},
                             Pong{}};
  for (const auto& sample : samples) {
    const std::size_t index = payload_index(sample);
    if (traffic.count[index] == 0) continue;
    bill.add_row({payload_name(sample),
                  Table::integer(static_cast<long long>(
                      traffic.count[index])),
                  Table::integer(static_cast<long long>(
                      traffic.bytes[index])),
                  Table::num(static_cast<double>(traffic.bytes[index]) /
                                 static_cast<double>(n), 0)});
  }
  bill.add_row({"TOTAL",
                Table::integer(static_cast<long long>(
                    traffic.total_messages)),
                Table::integer(static_cast<long long>(traffic.total_bytes)),
                Table::num(static_cast<double>(traffic.total_bytes) /
                               static_cast<double>(n), 0)});
  bench::emit(bill, options.csv());

  Table reliability({"reliability counter", "value"});
  reliability.add_row({"dropped messages",
                       Table::integer(static_cast<long long>(
                           traffic.dropped_messages))});
  reliability.add_row({"dropped bytes",
                       Table::integer(static_cast<long long>(
                           traffic.dropped_bytes))});
  reliability.add_row({"crash drops",
                       Table::integer(static_cast<long long>(
                           traffic.crash_drops))});
  reliability.add_row({"retransmissions",
                       Table::integer(static_cast<long long>(
                           traffic.retransmissions))});
  reliability.add_row({"handshake timeouts",
                       Table::integer(static_cast<long long>(
                           traffic.handshake_timeouts))});
  reliability.add_row({"dead peers detected",
                       Table::integer(static_cast<long long>(
                           traffic.dead_peers_detected))});
  reliability.add_row({"half-open repairs",
                       Table::integer(static_cast<long long>(
                           traffic.half_open_repairs))});
  bench::emit(reliability, options.csv());
  std::cout << "\nall reliability counters stay zero on the perfect wire "
               "(this run) — they only move under a FaultPlan; see "
               "bench_ext_fault_tolerance for the lossy/crashy sweeps.\n";
  std::cout << "\nconstruction cost is dominated by routing-table pushes "
               "and walk probes (tens of KB per node over the whole "
               "bootstrap; tune table_push_delay_ms to trade freshness "
               "for bandwidth) — still small next to a day of query "
               "traffic at Gnutella rates.\n";

  // --- 3. query response latency --------------------------------------------
  print_banner(std::cout, "query response latency (reverse-path hits)");
  auto query_phase = bench_run.phase("query-latency");
  Rng rng(seed ^ 77);
  OnlineStats response;
  SampleStats responses;
  std::size_t hits = 0;
  OnlineStats query_msgs;
  for (std::size_t q = 0; q < queries; ++q) {
    const auto source = static_cast<NodeId>(rng.uniform_below(n));
    const auto object = static_cast<ObjectId>(rng.uniform_below(20));
    const QueryOutcome outcome = network.run_query(source, object, 4);
    query_msgs.add(static_cast<double>(outcome.query_messages));
    if (outcome.success) {
      ++hits;
      if (outcome.response_ms > 0) {
        response.add(outcome.response_ms);
        responses.add(outcome.response_ms);
      }
    }
  }
  query_phase.stop();
  bench_run.gauge("proto.query_success", static_cast<double>(hits) /
                                             static_cast<double>(queries));
  bench_run.gauge("proto.query_msgs_mean", query_msgs.mean());
  Table latency_table({"metric", "value"});
  latency_table.add_row({"success rate",
                         Table::percent(static_cast<double>(hits) /
                                        static_cast<double>(queries))});
  latency_table.add_row({"query msgs/query", Table::num(query_msgs.mean(), 1)});
  if (response.count() > 0) {
    latency_table.add_row({"median response", Table::num(responses.median(), 0)});
    latency_table.add_row({"p90 response", Table::num(responses.percentile(90), 0)});
    latency_table.add_row({"max response", Table::num(response.max(), 0)});
  }
  bench::emit(latency_table, options.csv());
  std::cout << "\nresponse time = forward flood to the replica plus the "
               "reverse-path hit — a handful of physical RTTs, because "
               "Makalu keeps replicas within ~4 hops.\n";
  return bench_run.finish() ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
