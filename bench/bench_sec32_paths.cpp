// §3.2 — Graph diameter and characteristic paths.
//
// Reproduces the paper's APSP comparison on an Euclidean underlay:
// average shortest-path *cost* (latency) and diameter for Makalu,
// k-regular random, Gnutella v0.4, and Gnutella v0.6.
//
// Paper (10,000 nodes): cost Makalu 1205.9 | k-regular 1629.6 |
// v0.4 2915.1 | v0.6 1370.8; diameter 5 | 6 | 16 | 6.
//
// --ablate additionally sweeps the rating weights (alpha/beta) to show
// what each term of F buys (DESIGN.md §9.1).
#include "bench_common.hpp"

#include "support/stats.hpp"

#include "analysis/paper_reference.hpp"
#include "graph/metrics.hpp"
#include "net/latency_model.hpp"

namespace {

using namespace makalu;

PathMetrics metrics_for(const BuiltTopology& topology,
                        const LatencyModel& latency,
                        std::size_t sample_sources) {
  const CsrGraph csr = CsrGraph::from_graph(
      topology.graph,
      [&](NodeId a, NodeId b) { return latency.latency(a, b); });
  PathMetricsOptions options;
  options.sample_sources = sample_sources;
  return compute_path_metrics(csr, options);
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace makalu;
  const CliOptions options(argc, argv, {"ablate"});
  // Paper scale: 10,000 nodes, exact APSP. Laptop default: 4,000 nodes,
  // sampled sources (means stay unbiased; diameter is a lower bound).
  const bool paper = options.paper_scale();
  const std::size_t n = options.nodes(paper ? 10'000 : 4'000);
  const std::size_t sources = paper ? 0 : 400;
  const std::uint64_t seed = options.seed(42);
  bench::print_config("sec 3.2: graph diameter and characteristic paths", n,
                      1, 0, seed, paper);
  bench::BenchRun bench_run("sec32_paths", options, n, 1, 0, seed);

  const EuclideanModel latency(n, seed ^ 0x9e3779b9);
  TopologyFactoryOptions topo;
  topo.makalu = bench::analysis_makalu_parameters();

  Table table({"topology", "avg path cost", "paper cost", "diameter(hops)",
               "paper diam", "avg hops", "mean degree"});
  const TopologyKind kinds[] = {
      TopologyKind::kMakalu, TopologyKind::kKRegular,
      TopologyKind::kGnutellaV04, TopologyKind::kGnutellaV06};
  for (const auto kind : kinds) {
    auto kind_phase = bench_run.phase(std::string(topology_name(kind)));
    const auto built = build_topology(kind, latency, seed, topo);
    const auto m = metrics_for(built, latency, sources);
    const std::string key = topology_name(kind);
    bench_run.gauge("paths.cost." + key, m.characteristic_path_cost);
    bench_run.gauge("paths.diameter." + key,
                    static_cast<double>(m.diameter_hops));
    bench_run.gauge("paths.hops." + key, m.characteristic_path_hops);
    const auto degrees = degree_stats(CsrGraph::from_graph(built.graph));
    const paper::PathReference* ref = nullptr;
    for (const auto& r : paper::kPathTable) {
      if (std::string(topology_name(kind)).rfind(r.topology, 0) == 0) {
        ref = &r;
      }
    }
    table.add_row({topology_name(kind), Table::num(m.characteristic_path_cost, 1),
                   ref ? Table::num(ref->avg_path_cost, 1) : std::string("-"),
                   Table::integer(m.diameter_hops),
                   ref ? Table::num(ref->avg_diameter_hops, 0) : std::string("-"),
                   Table::num(m.characteristic_path_hops, 2),
                   Table::num(degrees.mean, 2)});
  }
  bench::emit(table, options.csv());
  std::cout << "\nshape check: Makalu cheapest paths; v0.4 worst cost and "
               "diameter; Makalu/k-regular/v0.6 diameters within ~2 hops.\n";

  if (options.has("ablate")) {
    print_banner(std::cout, "ablation: rating weights alpha/beta");
    Table ab({"alpha", "beta", "avg path cost", "diameter", "avg hops"});
    const std::pair<double, double> weights[] = {
        {1.0, 0.0}, {1.0, 1.0}, {0.0, 1.0}};
    for (const auto& [alpha, beta] : weights) {
      TopologyFactoryOptions wopt = topo;
      wopt.makalu.weights.alpha = alpha;
      wopt.makalu.weights.beta = beta;
      const auto built =
          build_topology(TopologyKind::kMakalu, latency, seed, wopt);
      const auto m = metrics_for(built, latency, sources);
      ab.add_row({Table::num(alpha, 1), Table::num(beta, 1),
                  Table::num(m.characteristic_path_cost, 1),
                  Table::integer(m.diameter_hops),
                  Table::num(m.characteristic_path_hops, 2)});
    }
    bench::emit(ab, options.csv());
    std::cout << "\nalpha-only ignores latency (high cost); beta-only "
                 "clusters geographically; alpha=beta=1 balances both.\n";
  }
  return bench_run.finish() ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
