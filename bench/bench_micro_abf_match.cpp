// Microbench: raw arena match-kernel throughput (bloom/filter_arena).
//
// Isolates the ABF hot loop — score every stack of a neighbor row against
// a precomputed probe set — from routing, topology, and catalog noise.
// The pre-PR baseline scores heap-scattered per-arc filters exactly as
// the old router did, so `micro_abf.speedup` is the honest before/after
// for the SIMD/word-loop rewrite, floor-gated via bench_compare.py
// --require (see EXPERIMENTS.md for measured numbers and thresholds).
//
// Experiment-bench shape (not google-benchmark) so it emits a
// makalu.bench.v1 JSON document and rides the bench_smoke ctest label.
#include "bench_common.hpp"

#include <algorithm>
#include <vector>

#include "bloom/abf_table.hpp"
#include "bloom/attenuated_bloom_filter.hpp"
#include "bloom/filter_arena.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) try {
  using namespace makalu;
  const CliOptions options(argc, argv);
  const bool paper = options.paper_scale();
  // n plays its usual role (network size); arcs follow the search
  // overlay's mean degree ~9.5 so stride/locality match production use.
  // (Default below fig4's 20k: the realistic fills below cost ~1.3k
  // inserts per arc per table at build time.)
  const std::size_t n = options.nodes(paper ? 100'000 : 10'000);
  const std::size_t runs = options.runs(3);
  const std::size_t queries = options.queries(2'000);
  const std::uint64_t seed = options.seed(42);
  constexpr std::size_t kDepth = 3;
  constexpr std::size_t kDegree = 10;  // arcs scored per match_many row
  bench::print_config("micro: ABF arena match kernels", n, runs, queries,
                      seed, paper);
  bench::BenchRun bench_run("micro_abf_match", options, n, runs, queries,
                            seed);

  auto build_phase = bench_run.phase("build-arena");
  const std::size_t arcs = n * kDegree;
  const BloomParameters params{1024, 4};
  FilterArena arena(arcs, kDepth, params);
  // The pre-PR routing table, byte for byte: one AttenuatedBloomFilter
  // object per arc, each level a separately-allocated BloomFilter —
  // heap-scattered, hashed-and-divided on every probe. Filled with the
  // same keys as the arena so every baseline scores identical data.
  std::vector<AttenuatedBloomFilter> legacy;
  legacy.reserve(arcs);
  for (std::size_t arc = 0; arc < arcs; ++arc) {
    legacy.emplace_back(kDepth, params);
  }
  Rng fill(seed);
  // Fill levels to the densities the distance-vector build actually
  // produces (40 objects/node, mean degree ~9.5): level 0 summarises one
  // store (~14% fill), level 1 a neighborhood (~77%), level 2 a two-hop
  // ball (~97%, nearly saturated). Density is what decides the probe
  // count per level, so matching it keeps the kernel compare honest.
  constexpr std::size_t kInserts[kDepth] = {40, 376, 900};
  for (std::size_t arc = 0; arc < arcs; ++arc) {
    for (std::size_t level = 0; level < kDepth; ++level) {
      for (std::size_t i = 0; i < kInserts[level]; ++i) {
        const std::uint64_t key = fill();
        arena.insert(arc, level, key);
        legacy[arc].level(level).insert(key);
      }
    }
  }
  build_phase.stop();

  struct KernelCase {
    const char* label;
    const char* gauge;
    MatchKernel mode;
  };
  std::vector<KernelCase> kernels = {
      {"reference (pre-arena)", "micro_abf.scores_per_sec_reference",
       MatchKernel::kReference},
      {"portable word-loop", "micro_abf.scores_per_sec_portable",
       MatchKernel::kPortable},
  };
  if (resolved_match_kernel() == MatchKernel::kAvx2) {
    kernels.push_back(
        {"avx2 gather", "micro_abf.scores_per_sec_avx2", MatchKernel::kAvx2});
  }

  auto match_phase = bench_run.phase("match-kernels");
  Table table({"kernel", "wall ms", "stack scores/s", "speedup"});
  const std::size_t rows = arcs / kDegree;
  double baseline_rate = 0.0;
  double best_rate = 0.0;
  double checksum_baseline = 0.0;
  std::vector<std::uint32_t> masks(kDegree);

  // Pre-PR baseline: score the heap-scattered stacks exactly as the old
  // router did — one match_score call per neighbor, rehashing and
  // dividing per (level, probe). Scores are sums of distinct powers of
  // two, so checksums compare exactly against the mask kernels.
  {
    double best_ms = 0.0;
    for (std::size_t rep = 0; rep < runs; ++rep) {  // min-of-runs timing
      Rng keys(seed ^ 0xfeed);
      checksum_baseline = 0.0;
      Stopwatch timer;
      for (std::size_t q = 0; q < queries; ++q) {
        const std::uint64_t key = keys();
        const std::size_t row = (q * 97) % rows;
        for (std::size_t j = 0; j < kDegree; ++j) {
          checksum_baseline += legacy[row * kDegree + j].match_score(key);
        }
      }
      const double ms = timer.millis();
      if (rep == 0 || ms < best_ms) best_ms = ms;
    }
    baseline_rate = static_cast<double>(queries) *
                    static_cast<double>(kDegree) / (best_ms / 1000.0);
    table.add_row({"pre-PR (heap per-arc filters)", Table::num(best_ms, 2),
                   Table::num(baseline_rate, 0), "1.00x"});
    bench_run.gauge("micro_abf.scores_per_sec_prepr", baseline_rate);
  }

  for (std::size_t k = 0; k < kernels.size(); ++k) {
    double best_ms = 0.0;
    double checksum = 0.0;
    for (std::size_t rep = 0; rep < runs; ++rep) {  // min-of-runs timing
      Rng keys(seed ^ 0xfeed);
      checksum = 0.0;
      Stopwatch timer;
      for (std::size_t q = 0; q < queries; ++q) {
        const BloomProbeSet probes = arena.make_probe_set(keys());
        // Stride through the arena one neighbor row at a time, as
        // routing does at each hop.
        const std::size_t row = (q * 97) % rows;
        arena.match_many(row * kDegree, kDegree, probes, masks.data(),
                         kernels[k].mode);
        for (const std::uint32_t mask : masks) {
          checksum += FilterArena::score_from_mask(mask);
        }
      }
      const double ms = timer.millis();
      if (rep == 0 || ms < best_ms) best_ms = ms;
    }
    // Identical matches => identical checksum, bit for bit (sums of exact
    // powers of two). A kernel that diverges is a correctness bug, not a
    // measurement artefact.
    if (checksum != checksum_baseline) {
      std::cerr << "error: kernel " << kernels[k].label
                << " diverged from the pre-PR scores\n";
      return 1;
    }
    const double rate = static_cast<double>(queries) *
                        static_cast<double>(kDegree) / (best_ms / 1000.0);
    best_rate = rate;  // kernels are ordered slowest-first
    table.add_row({kernels[k].label, Table::num(best_ms, 2),
                   Table::num(rate, 0),
                   Table::num(rate / baseline_rate, 2) + "x"});
    bench_run.gauge(kernels[k].gauge, rate);
  }
  bench_run.gauge("micro_abf.scores_per_sec", best_rate);
  bench_run.gauge("micro_abf.speedup", best_rate / baseline_rate);
  match_phase.stop();
  bench::emit(table, options.csv());
  std::cout << "\none probe-set build amortises over the whole neighbor "
               "row; the word kernels replay it with no hashing or "
               "division per (arc, level).\n";

  // --- blocked layout (bloom/abf_table): one cache line per peer -----------
  // Base match + sparse delta veto, exactly the kBlockedDelta route hot
  // loop. Scores here are NOT comparable to the per-arc arena above (a
  // different filter per origin), so the contract is internal: every
  // blocked kernel — reference, portable word-loop, AVX2 gather — must
  // produce the identical checksum, pinning portable-vs-AVX2 equality on
  // the blocked gather too.
  {
    auto blocked_phase = bench_run.phase("blocked-kernels");
    print_banner(std::cout, "blocked layout: base + delta kernels");
    const std::size_t brows = n / kDegree;
    BlockedAbfTable blocked(n, kDepth,
                            BlockedAbfTable::auto_level_bits(kDepth), 3);
    // Fill 128-bit levels to roughly the per-node densities the blocked
    // build produces under the fig4 catalog (~15% / ~60% / ~90%).
    constexpr std::size_t kBlockedInserts[kDepth] = {6, 35, 95};
    Rng bfill(seed ^ 0xb10cULL);
    for (std::uint32_t node = 0; node < n; ++node) {
      for (std::size_t level = 0; level < kDepth; ++level) {
        for (std::size_t i = 0; i < kBlockedInserts[level]; ++i) {
          blocked.insert(node, level, bfill());
        }
      }
    }
    // Sparse sole-contributor deltas on a quarter of the arcs, two
    // positions each — the density rescan_deltas typically leaves.
    for (std::uint32_t owner = 0; owner < n; ++owner) {
      for (std::size_t arc = 0; arc < kDegree; arc += 4) {
        for (std::size_t level = 1; level < kDepth; ++level) {
          std::uint16_t a = static_cast<std::uint16_t>(
              bfill.uniform_below(blocked.bits_per_level()));
          std::uint16_t b = static_cast<std::uint16_t>(
              bfill.uniform_below(blocked.bits_per_level()));
          if (a > b) std::swap(a, b);
          if (a == b) continue;
          const std::uint16_t pos[2] = {a, b};
          blocked.set_arc_delta(owner, arc, level, pos);
        }
      }
    }

    std::vector<KernelCase> bkernels = {
        {"reference (per-hash modulus)",
         "micro_abf.blocked_scores_per_sec_reference",
         MatchKernel::kReference},
        {"portable word-loop", "micro_abf.blocked_scores_per_sec_portable",
         MatchKernel::kPortable},
    };
    if (resolved_match_kernel() == MatchKernel::kAvx2) {
      bkernels.push_back({"avx2 gather (4 stacks/pass)",
                          "micro_abf.blocked_scores_per_sec_avx2",
                          MatchKernel::kAvx2});
    }

    Table btable({"kernel", "wall ms", "stack scores/s", "speedup"});
    std::vector<std::uint32_t> origins(kDegree);
    double blocked_reference_rate = 0.0;
    double blocked_best_rate = 0.0;
    double blocked_checksum_baseline = 0.0;
    for (std::size_t k = 0; k < bkernels.size(); ++k) {
      double best_ms = 0.0;
      double checksum = 0.0;
      for (std::size_t rep = 0; rep < runs; ++rep) {
        Rng keys(seed ^ 0xfeedULL);
        checksum = 0.0;
        Stopwatch timer;
        for (std::size_t q = 0; q < queries; ++q) {
          const BlockedProbeSet probes = blocked.make_probe_set(keys());
          const std::size_t row = (q * 97) % brows;
          const auto base = static_cast<std::uint32_t>(row * kDegree);
          for (std::size_t j = 0; j < kDegree; ++j) {
            origins[j] = base + static_cast<std::uint32_t>(j);
          }
          blocked.match_nodes(origins.data(), kDegree, probes,
                              masks.data(), bkernels[k].mode);
          blocked.apply_deltas(base, probes, masks.data(), kDegree);
          for (const std::uint32_t mask : masks) {
            checksum += FilterArena::score_from_mask(mask);
          }
        }
        const double ms = timer.millis();
        if (rep == 0 || ms < best_ms) best_ms = ms;
      }
      if (k == 0) {
        blocked_checksum_baseline = checksum;
      } else if (checksum != blocked_checksum_baseline) {
        std::cerr << "error: blocked kernel " << bkernels[k].label
                  << " diverged from the reference scores\n";
        return 1;
      }
      const double rate = static_cast<double>(queries) *
                          static_cast<double>(kDegree) /
                          (best_ms / 1000.0);
      if (k == 0) blocked_reference_rate = rate;
      blocked_best_rate = rate;  // ordered slowest-first
      btable.add_row({bkernels[k].label, Table::num(best_ms, 2),
                      Table::num(rate, 0),
                      Table::num(rate / blocked_reference_rate, 2) + "x"});
      bench_run.gauge(bkernels[k].gauge, rate);
    }
    bench_run.gauge("micro_abf.blocked_scores_per_sec", blocked_best_rate);
    bench_run.gauge("micro_abf.blocked_speedup",
                    blocked_best_rate / blocked_reference_rate);
    blocked_phase.stop();
    bench::emit(btable, options.csv());
    std::cout << "\nblocked stacks fit one 64-byte line per origin, so a "
                 "row of " << kDegree << " peers is " << kDegree
              << " line touches; all kernels above produced the identical "
                 "checksum.\n";
  }
  return bench_run.finish() ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
