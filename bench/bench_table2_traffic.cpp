// Table 2 — Traffic comparison between Makalu and Gnutella search traffic
// under the 2006 trace's query pressure (§5, experimental validation).
//
// Paper:                       Gnutella     Makalu
//   Outgoing msgs per query      38.439        8.5
//   Outgoing msgs per second    124.16        27.45
//   Outgoing bandwidth          103.4 kbps    23.04 kbps
//   Query success rate            6.9%        36%
//
// Procedure: the Gnutella column comes from the 2006 trace statistics;
// the Makalu column applies the same incoming query pressure (3.23 q/s,
// 106 B/query) to a simulated Makalu overlay (mean degree ≈9.5, TTL-5
// floods, worst-case single-replica objects).
#include "bench_common.hpp"

#include "analysis/paper_reference.hpp"
#include "analysis/traffic_comparison.hpp"
#include "workload/closed_loop.hpp"

int main(int argc, char** argv) try {
  using namespace makalu;
  const CliOptions options(argc, argv);
  const bool paper = options.paper_scale();
  TrafficComparisonOptions topts;
  topts.nodes = options.nodes(paper ? 100'000 : 20'000);
  topts.queries = options.queries(paper ? 500 : 300);
  topts.runs = options.runs(2);
  topts.seed = options.seed(42);
  bench::print_config("table 2: Makalu vs Gnutella search traffic",
                      topts.nodes, topts.runs, topts.queries, topts.seed,
                      paper);
  bench::BenchRun bench_run("table2_traffic", options, topts.nodes,
                            topts.runs, topts.queries, topts.seed);

  auto compare_phase = bench_run.phase("traffic-comparison");
  topts.metrics = bench_run.metrics();
  // Admit the paper's replay through the workload engine's closed-loop
  // arrival preset; aggregates are bit-identical to run_flood_batch
  // (tests/workload_test.cpp pins the zero-drift contract).
  topts.flood_batch = [](const BuiltTopology& topology,
                         const FloodExperimentOptions& flood) {
    return workload::closed_loop_flood_batch(topology, flood);
  };
  const auto result = run_traffic_comparison(topts);
  compare_phase.stop();
  const auto& g = result.gnutella;
  const auto& m = result.makalu;

  Table table({"metric", "Gnutella (trace)", "paper", "Makalu (sim)",
               "paper"});
  table.add_row({"Outgoing msgs per query", Table::num(g.forward_fanout, 3),
                 Table::num(paper::kTable2Gnutella.outgoing_msgs_per_query, 3),
                 Table::num(m.forward_fanout, 2),
                 Table::num(paper::kTable2Makalu.outgoing_msgs_per_query, 1)});
  table.add_row(
      {"Outgoing msgs per second",
       Table::num(g.outgoing_messages_per_second(), 2),
       Table::num(paper::kTable2Gnutella.outgoing_msgs_per_second, 2),
       Table::num(m.outgoing_messages_per_second(), 2),
       Table::num(paper::kTable2Makalu.outgoing_msgs_per_second, 2)});
  table.add_row({"Outgoing bandwidth (kbps)", Table::num(g.outgoing_kbps(), 1),
                 Table::num(paper::kTable2Gnutella.outgoing_kbps, 1),
                 Table::num(m.outgoing_kbps(), 2),
                 Table::num(paper::kTable2Makalu.outgoing_kbps, 2)});
  table.add_row({"Query success rate",
                 Table::percent(g.observed_success_rate),
                 Table::percent(paper::kTable2Gnutella.success_rate),
                 Table::percent(m.observed_success_rate),
                 Table::percent(paper::kTable2Makalu.success_rate)});
  table.add_row({"Neighbors per node", Table::num(g.active_neighbors, 0),
                 "~38", Table::num(result.makalu_mean_degree, 1), "9.5"});
  bench::emit(table, options.csv());
  std::cout << "\nwhole-flood messages per Makalu query: "
            << Table::num(result.makalu_messages_per_query, 1)
            << " (TTL 5, worst-case single replica)\n"
            << "shape check: Makalu resolves several times more queries "
               "than Gnutella's 6.9% while using ~75% less outgoing "
               "bandwidth and ~75% fewer neighbors per node. Success rate "
               "is sensitive to n (coverage/n); --paper reproduces the "
               "100k-node setting where the paper measured 36%.\n";
  return bench_run.finish() ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
