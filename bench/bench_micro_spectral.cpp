// Microbenchmarks: spectral machinery — dense eigensolver, Lanczos
// algebraic connectivity, Laplacian matvec — at the sizes the Figure 1 /
// §3.3 analyses run at.
#include <benchmark/benchmark.h>

#include "core/overlay_builder.hpp"
#include "net/latency_model.hpp"
#include "spectral/laplacian.hpp"

namespace {

using namespace makalu;

const CsrGraph& overlay_graph(std::size_t n) {
  static std::map<std::size_t, CsrGraph> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    const EuclideanModel latency(n, 42);
    it = cache.emplace(n, CsrGraph::from_graph(
                              OverlayBuilder().build(latency, 7).graph))
             .first;
  }
  return it->second;
}

void BM_DenseNormalizedSpectrum(benchmark::State& state) {
  const auto& csr = overlay_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(normalized_laplacian_spectrum(csr));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DenseNormalizedSpectrum)
    ->Arg(200)
    ->Arg(400)
    ->Arg(800)
    ->Unit(benchmark::kMillisecond);

void BM_AlgebraicConnectivityLanczos(benchmark::State& state) {
  const auto& csr = overlay_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algebraic_connectivity(csr));
  }
}
BENCHMARK(BM_AlgebraicConnectivityLanczos)
    ->Arg(1000)
    ->Arg(5000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

void BM_LaplacianMatvec(benchmark::State& state) {
  const auto& csr = overlay_graph(static_cast<std::size_t>(state.range(0)));
  std::vector<double> x(csr.node_count(), 1.0);
  std::vector<double> y;
  for (auto _ : state) {
    laplacian_matvec(csr, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * csr.edge_count()));
}
BENCHMARK(BM_LaplacianMatvec)->Arg(5000)->Arg(20000);

void BM_TridiagonalEigenvalues(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> diag(n, 2.0);
  std::vector<double> off(n - 1, -1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tridiagonal_eigenvalues(diag, off));
  }
}
BENCHMARK(BM_TridiagonalEigenvalues)->Arg(100)->Arg(400);

}  // namespace
