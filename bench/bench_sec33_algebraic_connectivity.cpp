// §3.3 — Structural and connectivity properties: algebraic connectivity
// (λ₁, the Fiedler value of the combinatorial Laplacian) of the four
// topology families.
//
// Paper: k-regular 2.7315 | Makalu 2.7189 | v0.4 0.035 | v0.6 0.936.
// (The paper's k-regular value matches k = 8: k - 2 sqrt(k-1) = 2.708.)
#include "bench_common.hpp"

#include "support/stats.hpp"

#include "analysis/paper_reference.hpp"
#include "analysis/spectral_experiments.hpp"
#include "graph/metrics.hpp"
#include "net/latency_model.hpp"

int main(int argc, char** argv) try {
  using namespace makalu;
  const CliOptions options(argc, argv);
  const bool paper = options.paper_scale();
  const std::size_t n = options.nodes(paper ? 10'000 : 4'000);
  const std::size_t runs = options.runs(paper ? 3 : 2);
  const std::uint64_t seed = options.seed(42);
  bench::print_config("sec 3.3: algebraic connectivity (lambda_1)", n, runs,
                      0, seed, paper);
  bench::BenchRun bench_run("sec33_algebraic_connectivity", options, n, runs,
                            0, seed);

  const EuclideanModel latency(n, seed ^ 0x51ed2701);
  TopologyFactoryOptions topo;
  topo.makalu = bench::analysis_makalu_parameters();

  Table table({"topology", "lambda_1 (mean)", "paper", "min", "max"});
  const TopologyKind kinds[] = {
      TopologyKind::kKRegular, TopologyKind::kMakalu,
      TopologyKind::kGnutellaV04, TopologyKind::kGnutellaV06};
  auto measure = [&](TopologyKind kind, const TopologyFactoryOptions& t,
                     const std::string& label) {
    auto label_phase = bench_run.phase(label);
    OnlineStats stats;
    for (std::size_t run = 0; run < runs; ++run) {
      const auto built = build_topology(kind, latency, seed + run, t);
      stats.add(topology_algebraic_connectivity(built.graph));
    }
    bench_run.gauge("lambda1." + label, stats.mean());
    const paper::ConnectivityReference* ref = nullptr;
    for (const auto& r : paper::kAlgebraicConnectivity) {
      if (std::string(topology_name(kind)).rfind(r.topology, 0) == 0) {
        ref = &r;
      }
    }
    table.add_row({label, Table::num(stats.mean(), 4),
                   ref ? Table::num(ref->lambda1, 4) : std::string("-"),
                   Table::num(stats.min(), 4), Table::num(stats.max(), 4)});
  };
  for (const auto kind : kinds) {
    measure(kind, topo, topology_name(kind));
    if (kind == TopologyKind::kMakalu) {
      // lambda_1 tracks mean degree; report the paper's search
      // configuration (mean degree ~9.5) alongside the heavier topology-
      // analysis configuration (10-12).
      TopologyFactoryOptions light = topo;
      light.makalu = bench::search_makalu_parameters();
      measure(kind, light, "Makalu (mean degree ~9.5)");
    }
  }
  bench::emit(table, options.csv());
  std::cout << "\nshape check: Makalu within a factor of ~1.3 of the "
               "k-regular ideal; v0.6 an order of magnitude lower; v0.4 "
               "nearly disconnected spectrally.\n";

  // Supporting evidence for the expansion claim (§2/§3): fraction of the
  // network inside the h-hop ball, averaged over sampled sources.
  print_banner(std::cout, "neighborhood expansion profile |B(v,h)| / n");
  auto expansion_phase = bench_run.phase("expansion-profile");
  Table expansion({"topology", "h=1", "h=2", "h=3", "h=4"});
  for (const auto kind : kinds) {
    const auto built = build_topology(kind, latency, seed, topo);
    const auto profile = expansion_profile(
        CsrGraph::from_graph(built.graph), 4, 64, seed ^ 0xe8);
    bench_run.gauge(std::string("expansion.h2.") + topology_name(kind),
                    profile[2]);
    bench_run.gauge(std::string("expansion.h3.") + topology_name(kind),
                    profile[3]);
    expansion.add_row({topology_name(kind), Table::percent(profile[1]),
                       Table::percent(profile[2]),
                       Table::percent(profile[3]),
                       Table::percent(profile[4])});
  }
  expansion_phase.stop();
  bench::emit(expansion, options.csv());
  std::cout << "\nMakalu's h-hop balls grow like the k-regular ideal's "
               "(geometric until saturation); the power-law overlay "
               "expands an order of magnitude slower from typical "
               "(low-degree) sources.\n";
  return bench_run.finish() ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
