// Figure 4 — Success rate vs TTL for attenuated-Bloom-filter identifier
// search on a Makalu overlay (paper: 100,000 nodes, ABF depth 3).
//
// Paper: at >=0.5% replication, >95% of queries resolve within 5 hops and
// all within 8; at 0.1%, >75% within 10 hops and >95% within 15.
//
// --ablate sweeps the filter depth (1..4) at 0.5% replication to show why
// the paper chose depth 3 (DESIGN.md §10.2).
#include "bench_common.hpp"

#include <cmath>

#include "analysis/abf_experiments.hpp"
#include "analysis/paper_reference.hpp"
#include "analysis/parallel_query_driver.hpp"
#include "dht/chord.hpp"
#include "net/latency_model.hpp"
#include "sim/failure.hpp"
#include "sim/replica_placement.hpp"

int main(int argc, char** argv) try {
  using namespace makalu;
  const CliOptions options(argc, argv, {"ablate"});
  const bool paper = options.paper_scale();
  const std::size_t n = options.nodes(paper ? 100'000 : 20'000);
  const std::size_t runs = options.runs(2);
  const std::size_t queries = options.queries(paper ? 300 : 150);
  const std::uint64_t seed = options.seed(42);
  constexpr std::uint32_t kMaxTtl = 25;
  bench::print_config("fig 4: ABF identifier search, success vs TTL", n,
                      runs, queries, seed, paper);
  bench::BenchRun bench_run("fig4_abf_search", options, n, runs, queries,
                            seed);

  auto build_phase = bench_run.phase("build-overlay");
  const EuclideanModel latency(n, seed ^ 0xabf);
  TopologyFactoryOptions topo;
  topo.makalu = bench::search_makalu_parameters();
  const auto topology =
      build_topology(TopologyKind::kMakalu, latency, seed, topo);
  build_phase.stop();
  auto ttl_phase = bench_run.phase("success-vs-ttl");

  Table table({"replication", "TTL5", "TTL8", "TTL10", "TTL15", "TTL20",
               "TTL25", "paper reference"});
  struct Row {
    double percent;
    const char* reference;
  };
  const Row rows[] = {
      {0.1, ">75% by 10, >95% by 15"},
      {0.5, ">95% by 5, 100% by 8"},
      {1.0, ">95% by 5, 100% by 8"},
  };
  for (const auto& row : rows) {
    AbfExperimentOptions aopts;
    aopts.replication_ratio = row.percent / 100.0;
    aopts.queries = queries;
    aopts.runs = runs;
    aopts.objects = 40;
    aopts.seed = seed;
    aopts.metrics = bench_run.metrics();
    const auto rates = abf_success_vs_ttl(topology, aopts, kMaxTtl);
    table.add_row({Table::num(row.percent, 1) + "%",
                   Table::percent(rates[5]), Table::percent(rates[8]),
                   Table::percent(rates[10]), Table::percent(rates[15]),
                   Table::percent(rates[20]), Table::percent(rates[25]),
                   row.reference});
  }
  ttl_phase.stop();
  bench::emit(table, options.csv());
  std::cout << "\nshape check: higher replication saturates in fewer hops; "
               "0.1% needs the deep tail. Most queries resolve in <10 "
               "messages — comparable to structured (DHT) systems.\n";

  // --- hot path: level-weighted match scoring. The same router routes
  // the same queries under each scoring path, on bit-identical tables:
  // the pre-PR baseline replays the original data structure (one heap
  // AttenuatedBloomFilter per arc, hash pair rederived and runtime-divide
  // modulus per (neighbor, level) — see AbfRouter::enable_legacy_replay),
  // kReference keeps that instruction mix on arena memory, and the word
  // kernels replay one precomputed probe set per query. The speedup gauge
  // is an honest before/after on identical data. Results must be
  // bit-identical across every path (the differential suite pins this;
  // the bench re-checks the aggregate).
  {
    auto hot_phase = bench_run.phase("match-kernel-speedup");
    print_banner(std::cout,
                 "hot path: table layouts x match kernels (queries/sec)");
    const std::size_t hot_queries = queries * 20;
    const ObjectCatalog catalog(n, 40, 0.005, seed ^ 0x5c0);
    const CsrGraph csr = CsrGraph::from_graph(topology.graph);
    // The pre-PR baseline is the kLegacy *layout*, which holds the replay
    // mirror for its whole lifetime (AbfRouter enables it at
    // construction) — every baseline rep scores heap per-arc filters,
    // rather than toggling replay around a pooled router and hoping the
    // toggles bracket the timed region.
    AbfOptions legacy_opts;
    legacy_opts.layout = TableLayout::kLegacy;
    AbfRouter legacy_router(csr, catalog, legacy_opts);
    AbfRouter router(csr, catalog, AbfOptions{});  // kPooledStack
    // Compressed layout: per-node blocked base + per-arc deltas. Routes
    // are NOT bit-identical (the false-positive set widens), so its rows
    // are held to the differential suite's quality gate instead.
    AbfOptions blocked_opts;
    blocked_opts.layout = TableLayout::kBlockedDelta;
    blocked_opts.blocked_level_bits = 256;
    AbfRouter blocked_router(csr, catalog, blocked_opts);
    const ParallelQueryDriver driver(1);
    BatchQueryOptions hot_batch;
    hot_batch.queries = hot_queries;
    hot_batch.seed = seed ^ 0xa5f;

    struct KernelCase {
      const char* label;
      AbfRouter* router;
      MatchKernel mode;
      bool batch;
      bool quality_gate;  // blocked rows: bounded deltas, not bit-identity
    };
    std::vector<KernelCase> kernels = {
        {"pre-PR (kLegacy heap tables)", &legacy_router, MatchKernel::kAuto,
         false, false},
        {"reference (pre-arena mix)", &router, MatchKernel::kReference,
         false, false},
        {"portable word-loop", &router, MatchKernel::kPortable, false,
         false},
    };
    if (resolved_match_kernel() == MatchKernel::kAvx2) {
      kernels.push_back(
          {"avx2 gather", &router, MatchKernel::kAvx2, false, false});
    }
    // Dispatched kernel + interleaved-walker batching: co-scheduled
    // queries overlap each other's filter-row loads (see
    // AbfRouter::run_many), on top of the word-level scoring.
    kernels.push_back(
        {"batched walkers + simd", &router, MatchKernel::kAuto, true,
         false});
    kernels.push_back({"blocked delta (1 line/peer)", &blocked_router,
                       MatchKernel::kAuto, false, true});
    kernels.push_back({"blocked + batched walkers", &blocked_router,
                       MatchKernel::kAuto, true, true});

    Table hot({"layout / kernel", "wall ms", "queries/s", "speedup",
               "success"});
    double baseline_qps = 0.0;
    double best_qps = 0.0;  // fastest bit-identical configuration
    QueryAggregate baseline_agg;
    for (std::size_t k = 0; k < kernels.size(); ++k) {
      kernels[k].router->set_scoring_mode(kernels[k].mode);
      hot_batch.batch = kernels[k].batch;
      double best_ms = 0.0;
      QueryAggregate agg;
      for (int rep = 0; rep < 7; ++rep) {  // min-of-7 against timer noise
        Stopwatch timer;
        QueryAggregate rep_agg =
            driver.run_batch(*kernels[k].router, catalog, hot_batch);
        const double ms = timer.millis();
        if (rep == 0 || ms < best_ms) best_ms = ms;
        agg = rep_agg;
      }
      const double qps =
          static_cast<double>(hot_queries) / (best_ms / 1000.0);
      if (k == 0) {
        baseline_qps = qps;
        baseline_agg = agg;
      } else if (!kernels[k].quality_gate) {
        if (agg.success_rate() != baseline_agg.success_rate() ||
            agg.mean_messages() != baseline_agg.mean_messages()) {
          std::cerr << "error: kernel " << kernels[k].label
                    << " diverged from the pre-PR results\n";
          return 1;
        }
      } else {
        // The tests/abf_table_differential_test.cpp gate, re-checked on
        // this workload: success within 0.5 pp, messages within 2%.
        const double dsucc =
            std::abs(agg.success_rate() - baseline_agg.success_rate());
        const double dmsgs =
            std::abs(agg.mean_messages() - baseline_agg.mean_messages()) /
            baseline_agg.mean_messages();
        if (dsucc > 0.005 || dmsgs > 0.02) {
          std::cerr << "error: " << kernels[k].label
                    << " failed the quality gate (d_success="
                    << dsucc * 100.0 << " pp, d_messages="
                    << dmsgs * 100.0 << "%)\n";
          return 1;
        }
      }
      hot.add_row({kernels[k].label, Table::num(best_ms, 1),
                   Table::num(qps, 0),
                   Table::num(qps / baseline_qps, 2) + "x",
                   Table::percent(agg.success_rate())});
      if (k == 0) {
        bench_run.gauge("abf_match.qps_prepr", qps);
      } else if (kernels[k].mode == MatchKernel::kReference) {
        bench_run.gauge("abf_match.qps_reference", qps);
      } else if (kernels[k].mode == MatchKernel::kPortable) {
        bench_run.gauge("abf_match.qps_portable", qps);
      } else if (kernels[k].quality_gate) {
        bench_run.gauge(kernels[k].batch ? "abf_match.qps_blocked_batched"
                                         : "abf_match.qps_blocked",
                        qps);
      } else if (!kernels[k].batch) {
        bench_run.gauge("abf_match.qps_simd", qps);
      } else {
        bench_run.gauge("abf_match.qps_batched", qps);
      }
      if (k > 0 && !kernels[k].quality_gate && qps > best_qps) {
        best_qps = qps;
      }
    }
    // Headline = the fastest bit-identical production configuration:
    // kAuto dispatch, with or without walker batching (batching wins only
    // when walkers are latency-bound; scoring here is
    // gather-throughput-bound on one core, so the scalar dispatch usually
    // leads). Blocked rows report their own gauges plus the table-size
    // contrast that motivates them.
    bench_run.gauge("abf_match.qps", best_qps);
    bench_run.gauge("abf_match.speedup", best_qps / baseline_qps);
    const double pooled_mb =
        static_cast<double>(router.table_bytes()) / (1024.0 * 1024.0);
    const double blocked_mb =
        static_cast<double>(blocked_router.table_bytes()) /
        (1024.0 * 1024.0);
    bench_run.gauge("abf_match.table_mb_pooled", pooled_mb);
    bench_run.gauge("abf_match.table_mb_blocked", blocked_mb);
    bench_run.gauge("abf_match.table_reduction", pooled_mb / blocked_mb);
    hot_phase.stop();
    bench::emit(hot, options.csv());
    std::cout << "\narena rows return bit-identical routes to the pre-PR "
                 "baseline; blocked rows trade a bounded quality delta "
                 "(gated above) for a " << Table::num(pooled_mb / blocked_mb, 1)
              << "x smaller table (" << Table::num(pooled_mb, 1) << " MB -> "
              << Table::num(blocked_mb, 1)
              << " MB here). Floors/ceilings ride scripts/bench_compare.py "
                 "(see EXPERIMENTS.md).\n";
  }

  // --- structured baseline: making §4.6's "comparable to structured P2P
  // systems" claim measurable. Routing-resilience comparison: in both
  // systems the querying node and the data host are alive; what differs
  // is whether the *routing fabric* still delivers. Chord fails when the
  // finger/successor chain is dead; ABF-on-Makalu fails only if the
  // damaged overlay no longer reaches a replica within the TTL.
  {
    auto chord_phase = bench_run.phase("chord-baseline");
    print_banner(std::cout, "structured baseline: Chord (64-bit ring)");
    const ChordRing chord(n, seed ^ 0xc0de);
    Table base({"system", "healthy cost", "success @10% fail",
                "success @30% fail"});

    // Chord rows: random failures (no degree skew to target), keys with
    // live owners only.
    auto chord_success = [&](double fraction, std::size_t successor_list) {
      Rng frng(seed ^ 0x5eed);
      std::vector<bool> failed(n, false);
      std::size_t count = static_cast<std::size_t>(
          fraction * static_cast<double>(n));
      while (count > 0) {
        const auto v = static_cast<NodeId>(frng.uniform_below(n));
        if (!failed[v]) {
          failed[v] = true;
          --count;
        }
      }
      ChordLookupOptions lopts;
      lopts.failed = &failed;
      lopts.successor_list = successor_list;
      Rng rng(seed ^ 0xfee1);
      std::size_t hits = 0;
      std::size_t attempts = 0;
      while (attempts < 300) {
        const auto source = static_cast<NodeId>(rng.uniform_below(n));
        const std::uint64_t key = rng();
        if (failed[source] || failed[chord.responsible_node(key)]) continue;
        ++attempts;
        hits += chord.lookup(source, key, lopts).success;
      }
      return static_cast<double>(hits) / static_cast<double>(attempts);
    };
    const double chord_hops = chord.mean_lookup_hops(400, seed ^ 0x40e1);
    base.add_row({"Chord (plain)",
                  Table::num(chord_hops, 1) + " hops",
                  Table::percent(chord_success(0.10, 1)),
                  Table::percent(chord_success(0.30, 1))});
    base.add_row({"Chord (successor list 8)",
                  Table::num(chord_hops, 1) + " hops",
                  Table::percent(chord_success(0.10, 8)),
                  Table::percent(chord_success(0.30, 8))});

    // Makalu + ABF row: targeted (worst-case) failures of the overlay's
    // top-degree nodes; content re-placed on survivors so the row
    // isolates routing resilience from data durability.
    auto abf_after_failure = [&](double fraction) {
      const auto failed =
          select_top_degree_failures(topology.graph, fraction);
      const Graph survivors = apply_failures(topology.graph, failed);
      BuiltTopology damaged;
      damaged.kind = TopologyKind::kMakalu;
      damaged.graph = survivors;
      AbfExperimentOptions aopts;
      aopts.replication_ratio = 0.005;
      aopts.queries = 150;
      aopts.runs = 1;
      aopts.objects = 30;
      aopts.seed = seed;
      return run_abf_batch(damaged, 15, aopts).success_rate();
    };
    {
      AbfExperimentOptions aopts;
      aopts.replication_ratio = 0.005;
      aopts.queries = 150;
      aopts.runs = 1;
      aopts.objects = 30;
      aopts.seed = seed;
      const auto healthy = run_abf_batch(topology, 15, aopts);
      base.add_row({"Makalu + ABF (0.5% repl)",
                    Table::num(healthy.hit_hops().mean(), 1) + " msgs",
                    Table::percent(abf_after_failure(0.10)),
                    Table::percent(abf_after_failure(0.30))});
    }
    bench::emit(base, options.csv());
    std::cout << "\nhealthy cost is indeed comparable (a handful of "
                 "messages either way — the paper's §4.6 claim); under "
                 "failure, plain Chord's rigid fabric degrades while "
                 "Makalu+ABF rides on the expander's redundancy. Chord "
                 "needs successor lists (state + maintenance) to match "
                 "what Makalu gets structurally.\n";
    chord_phase.stop();
  }

  if (options.has("ablate")) {
    print_banner(std::cout, "ablation: ABF depth (0.5% replication)");
    Table ab({"depth", "TTL5", "TTL10", "TTL25", "table bytes/link"});
    for (const std::size_t depth : {1u, 2u, 3u, 4u}) {
      AbfExperimentOptions aopts;
      aopts.replication_ratio = 0.005;
      aopts.queries = std::min<std::size_t>(queries, 100);
      aopts.runs = 1;
      aopts.objects = 40;
      aopts.seed = seed;
      aopts.abf.depth = depth;
      const auto rates = abf_success_vs_ttl(topology, aopts, kMaxTtl);
      ab.add_row({Table::integer(static_cast<long long>(depth)),
                  Table::percent(rates[5]), Table::percent(rates[10]),
                  Table::percent(rates[25]),
                  Table::integer(static_cast<long long>(
                      depth * aopts.abf.level_params.bits / 8))});
    }
    bench::emit(ab, options.csv());
    std::cout << "\ndepth 3 is the knee: depth 1-2 filters see too little "
                 "of the network; depth 4 pays memory/exchange cost for "
                 "marginal gain (deep levels are noisy).\n";
  }
  return bench_run.finish() ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
