// Figure 1 — Normalized Laplacian eigenvalue spectrum of the Makalu
// topology when the most highly connected nodes fail (no recovery).
//
// Paper claims: multiplicity of eigenvalue 0 stays 1 (the overlay remains
// connected), multiplicity of eigenvalue 1 stays low (no weakly-connected
// "edge" nodes appear), and the spectrum's shape stays close to the
// k-regular ideal even at 30% targeted failures.
//
// Output: per failure level, the multiplicities and a coarse (rank, λ)
// sampling of the spectrum curve; the k-regular spectrum is printed for
// visual comparison. The dense eigensolver is O(n^3): default n is modest
// and --paper raises it.
#include "bench_common.hpp"

#include "analysis/flood_experiments.hpp"
#include "analysis/spectral_experiments.hpp"
#include "net/latency_model.hpp"
#include "sim/failure.hpp"
#include "spectral/laplacian.hpp"

namespace {

using namespace makalu;

void print_spectrum_row(Table& table, const std::string& label,
                        const std::vector<double>& spectrum,
                        std::size_t mult0, std::size_t mult1) {
  // Sample the curve at fixed normalized ranks.
  const auto points = normalized_spectrum_points(spectrum);
  auto at = [&](double x) {
    const auto idx = static_cast<std::size_t>(
        x * static_cast<double>(points.size() - 1));
    return points[idx].second;
  };
  table.add_row({label, Table::integer(static_cast<long long>(mult0)),
                 Table::integer(static_cast<long long>(mult1)),
                 Table::num(at(0.05), 3), Table::num(at(0.25), 3),
                 Table::num(at(0.5), 3), Table::num(at(0.75), 3),
                 Table::num(at(0.95), 3)});
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace makalu;
  const CliOptions options(argc, argv, {"random-failures"});
  const bool paper = options.paper_scale();
  const std::size_t n = options.nodes(paper ? 3'000 : 1'200);
  const std::uint64_t seed = options.seed(42);
  const bool random_adversary = options.has("random-failures");
  bench::print_config("fig 1: normalized Laplacian spectrum under failure",
                      n, 1, 0, seed, paper);
  if (random_adversary) {
    std::cout << "adversary: RANDOM failures (paper's targeted variant is "
                 "the default)\n\n";
  }

  bench::BenchRun bench_run("fig1_failure_spectrum", options, n, 1, 0, seed);

  auto build_phase = bench_run.phase("build-topologies");
  const EuclideanModel latency(n, seed ^ 0xf00d);
  TopologyFactoryOptions topo;
  topo.makalu = bench::analysis_makalu_parameters();
  const auto makalu_topology =
      build_topology(TopologyKind::kMakalu, latency, seed, topo);
  const auto kreg_topology =
      build_topology(TopologyKind::kKRegular, latency, seed, topo);
  build_phase.stop();

  auto spectrum_phase = bench_run.phase("eigensolve");
  Table table({"snapshot", "mult(0)", "mult(1)", "λ@5%", "λ@25%", "λ@50%",
               "λ@75%", "λ@95%"});
  for (const double fraction : {0.0, 0.1, 0.2, 0.3}) {
    const auto result = spectrum_under_failure(
        makalu_topology.graph, fraction, random_adversary, seed);
    print_spectrum_row(
        table,
        "Makalu, " + Table::num(fraction * 100.0, 0) + "% failed",
        result.spectrum, result.multiplicity_zero, result.multiplicity_one);
  }
  {
    const auto ideal =
        spectrum_under_failure(kreg_topology.graph, 0.0, false, seed);
    print_spectrum_row(table, "k-regular ideal, 0% failed", ideal.spectrum,
                       ideal.multiplicity_zero, ideal.multiplicity_one);
  }
  spectrum_phase.stop();
  bench::emit(table, options.csv());
  std::cout << "\nshape check (paper): mult(0) stays 1 — the overlay "
               "remains one component even at 30% targeted failures; "
               "mult(1) stays ~0 — no weakly-connected edge nodes; the "
               "quantile curve stays near the k-regular row.\n";

  // §7's companion claim: the overlay "was able to withstand the failure
  // of over 30% of the nodes ... while still maintaining good
  // communication costs and search performance". Flood the failed
  // snapshot (no recovery; content re-placed on survivors to isolate
  // routing from data loss).
  print_banner(std::cout, "search performance on the failed snapshot");
  auto search_phase = bench_run.phase("failed-snapshot-search");
  Table search_table({"failed", "success (TTL 4)", "msgs/query",
                      "dup fraction"});
  for (const double fraction : {0.0, 0.1, 0.2, 0.3}) {
    const auto failed = fraction > 0.0
                            ? select_top_degree_failures(
                                  makalu_topology.graph, fraction)
                            : std::vector<bool>(
                                  makalu_topology.graph.node_count(), false);
    BuiltTopology damaged;
    damaged.kind = TopologyKind::kMakalu;
    damaged.graph = apply_failures(makalu_topology.graph, failed);
    FloodExperimentOptions fopts;
    fopts.replication_ratio = 0.01;
    fopts.ttl = 4;
    fopts.queries = 150;
    fopts.runs = 1;
    fopts.objects = 20;
    fopts.seed = seed;
    fopts.metrics = bench_run.metrics();
    const auto agg = run_flood_batch(damaged, fopts);
    search_table.add_row({Table::percent(fraction, 0),
                          Table::percent(agg.success_rate()),
                          Table::num(agg.mean_messages(), 1),
                          Table::percent(agg.duplicate_fraction())});
  }
  search_phase.stop();
  bench::emit(search_table, options.csv());
  std::cout << "\nsearch survives: success holds at ~100% through 30% "
               "targeted failure. (At this spectral-bench size a TTL-4 "
               "flood saturates the network, so message counts track the "
               "shrinking survivor set and duplicate share is boundary-"
               "dominated; bench_table1 --n covers the pre-saturation "
               "regime.)\n";
  return bench_run.finish() ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
