// Trace replay: drive a synthetic Gnutella-2006 query stream over Makalu
// and Gnutella v0.6 overlays (the full version of the paper's §5
// validation), then use the discrete-event engine to measure wall-clock
// response latency of a few queries on the physical-latency model.
//
//   $ ./trace_replay [--n=5000] [--seconds=30]
#include <iostream>

#include "analysis/topology_factory.hpp"
#include "graph/graph.hpp"
#include "net/latency_model.hpp"
#include "search/timed_flood.hpp"
#include "search/two_tier_flood.hpp"
#include "sim/replica_placement.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "trace/synthetic_trace.hpp"

using namespace makalu;

int main(int argc, char** argv) try {
  const CliOptions options(argc, argv, {"seconds"});
  const std::size_t n = options.nodes(5'000);
  const double seconds = options.get_double("seconds", 30.0);
  const std::uint64_t seed = options.seed(31);

  const EuclideanModel latency(n, seed);
  const auto makalu = build_topology(TopologyKind::kMakalu, latency, seed);
  const auto v06 =
      build_topology(TopologyKind::kGnutellaV06, latency, seed);

  // Worst-case-ish content: 200 objects at 0.1% replication.
  const ObjectCatalog catalog(n, 200, 0.001, seed ^ 6);

  const auto profile = gnutella_traffic_2006();
  SyntheticTraceOptions topts;
  topts.duration_seconds = seconds;
  topts.node_count = n;
  topts.object_count = 200;
  const auto trace = generate_trace(profile, topts, seed ^ 7);
  std::cout << "replaying " << trace.size() << " queries ("
            << profile.queries_per_second << "/s Poisson, Zipf objects, "
            << seconds << "s) over " << n << " nodes\n\n";

  Table table({"overlay", "success", "msgs/query", "net kbps (all nodes)",
               "busiest node msgs"});
  {
    const CsrGraph csr = CsrGraph::from_graph(makalu.graph);
    const auto report = replay_flood_trace(csr, catalog, trace, 4);
    table.add_row({"Makalu (flood TTL 4)",
                   Table::percent(report.aggregate.success_rate()),
                   Table::num(report.aggregate.mean_messages(), 1),
                   Table::num(report.total_outgoing_kbps(), 1),
                   Table::num(report.per_node_outgoing.max(), 0)});
  }
  {
    // v0.6 replay: drive the two-tier engine query by query.
    const CsrGraph csr = CsrGraph::from_graph(v06.graph);
    TwoTierFloodEngine engine(csr, v06.is_ultrapeer);
    TwoTierFloodOptions fopts;
    fopts.ttl = 4;
    QueryAggregate agg;
    OnlineStats bytes;
    std::vector<std::uint64_t> per_node(n, 0);
    for (const auto& q : trace) {
      const auto r = engine.run(q.source, q.object, catalog, fopts);
      agg.add(r);
      bytes.add(static_cast<double>(q.size_bytes));
    }
    const double msgs_per_s =
        agg.mean_messages() * static_cast<double>(agg.queries()) /
        std::max(1e-9, trace.back().time_ms / 1000.0);
    table.add_row({"Gnutella v0.6 (TTL 4)", Table::percent(agg.success_rate()),
                   Table::num(agg.mean_messages(), 1),
                   Table::num(msgs_per_s * bytes.mean() * 8.0 / 1000.0, 1),
                   "-"});
  }
  table.print(std::cout);

  std::cout << "\nresponse latency (discrete-event simulation, physical "
               "latencies):\n";
  const CsrGraph csr = CsrGraph::from_graph(makalu.graph);
  TimedFloodEngine timed(csr, latency);
  Rng rng(seed ^ 8);
  OnlineStats first_hit;
  OnlineStats response;
  std::size_t misses = 0;
  for (int q = 0; q < 25; ++q) {
    const auto source = static_cast<NodeId>(rng.uniform_below(n));
    const auto object = static_cast<ObjectId>(rng.uniform_below(200));
    const auto r = timed.run(source, object, catalog, 4);
    if (r.success) {
      first_hit.add(r.first_hit_ms);
      response.add(r.response_ms);
    } else {
      ++misses;
    }
  }
  std::cout << "  first replica reached after: mean "
            << Table::num(first_hit.mean(), 1) << " / max "
            << Table::num(first_hit.max(), 1)
            << "; full response (reverse path): mean "
            << Table::num(response.mean(), 1) << " / max "
            << Table::num(response.max(), 1)
            << " (latency units), misses: " << misses << "\n"
            << "\nMakalu resolves more of the trace with a fraction of "
               "the v0.6 message volume — the §5 result, replayed.\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
