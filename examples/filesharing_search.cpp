// File-sharing workload: the scenario the paper's introduction motivates.
//
// A library of files with Zipf popularity is spread over a Makalu overlay
// (popular files on many nodes, niche files on very few — replication
// tracks popularity, as in deployed file-sharing networks). A batch of
// queries, also Zipf-distributed, is then resolved three ways:
//
//   - controlled flooding   (wild-card search, §4.2)
//   - k-walker random walk  (the related-work baseline)
//   - ABF identifier routing (exact-name lookup, §4.6)
//
// and the cost/recall trade-off is printed per mechanism and per
// popularity band (head/torso/tail of the catalog).
#include <iostream>

#include "analysis/parallel_query_driver.hpp"
#include "core/overlay_builder.hpp"
#include "graph/graph.hpp"
#include "net/latency_model.hpp"
#include "search/abf_search.hpp"
#include "search/flood_search.hpp"
#include "search/random_walk_search.hpp"
#include "sim/query_stats.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace {

using namespace makalu;

// Popularity-dependent replica placement: file f's replication ratio
// interpolates from `head` down to `tail` following a Zipf profile.
class PopularityCatalog {
 public:
  PopularityCatalog(std::size_t nodes, std::size_t files, double head_ratio,
                    double tail_ratio, std::uint64_t seed) {
    Rng rng(seed);
    catalogs_.reserve(files);
    for (std::size_t f = 0; f < files; ++f) {
      // Zipf-like decay of replication with rank.
      const double rank_factor =
          1.0 / (1.0 + static_cast<double>(f) * 0.35);
      const double ratio =
          std::max(tail_ratio, head_ratio * rank_factor);
      catalogs_.emplace_back(nodes, 1, ratio, rng());
    }
  }

  [[nodiscard]] std::size_t files() const { return catalogs_.size(); }
  [[nodiscard]] bool has(NodeId node, std::size_t file) const {
    return catalogs_[file].node_has_object(node, 0);
  }
  [[nodiscard]] const ObjectCatalog& catalog(std::size_t file) const {
    return catalogs_[file];
  }
  [[nodiscard]] std::size_t replicas(std::size_t file) const {
    return catalogs_[file].replicas_per_object();
  }

 private:
  std::vector<ObjectCatalog> catalogs_;
};

struct MechanismStats {
  QueryAggregate head;
  QueryAggregate torso;
  QueryAggregate tail;

  QueryAggregate& band(std::size_t file, std::size_t files) {
    if (file < files / 5) return head;
    if (file < 3 * files / 5) return torso;
    return tail;
  }
};

void print_stats(Table& table, const std::string& mechanism,
                 const char* band, const QueryAggregate& agg) {
  table.add_row({mechanism, band, Table::percent(agg.success_rate()),
                 Table::num(agg.mean_messages(), 1),
                 agg.hit_hops().empty()
                     ? std::string("-")
                     : Table::num(agg.hit_hops().median(), 0)});
}

}  // namespace

int main(int argc, char** argv) try {
  const CliOptions options(argc, argv);
  const std::size_t n = options.nodes(5'000);
  const std::size_t queries = options.queries(300);
  const std::uint64_t seed = options.seed(11);

  std::cout << "file-sharing search on a " << n << "-node Makalu overlay\n"
            << "library: 40 files, replication from 2% (hits) down to "
               "0.05% (rare)\n\n";

  const EuclideanModel latency(n, seed);
  const MakaluOverlay overlay = OverlayBuilder().build(latency, seed);
  const CsrGraph csr = CsrGraph::from_graph(overlay.graph);

  const std::size_t files = 40;
  const PopularityCatalog library(n, files, 0.02, 0.0005, seed ^ 3);

  FloodOptions fopts;
  fopts.ttl = 4;
  const FloodEngine flood(csr, fopts);
  RandomWalkOptions wopts;
  wopts.walkers = 16;
  wopts.ttl = 40;
  const RandomWalkEngine walker(csr, wopts);

  Rng rng(seed ^ 4);
  ZipfSampler popularity(files, 0.9);

  MechanismStats flood_stats;
  MechanismStats walk_stats;
  MechanismStats abf_stats;

  // Zipf-draw the per-file demand up front, then resolve each file's
  // queries as one ParallelQueryDriver batch (one workspace per worker;
  // results identical at any thread count).
  std::vector<std::size_t> demand(files, 0);
  for (std::size_t q = 0; q < queries; ++q) ++demand[popularity(rng)];

  const ParallelQueryDriver driver;
  std::uint64_t flood_messages = 0;
  for (std::size_t file = 0; file < files; ++file) {
    if (demand[file] == 0) continue;
    BatchQueryOptions batch;
    batch.queries = demand[file];
    batch.seed = rng();
    // Trace sink: per-query observability without touching the engines.
    batch.trace_sink = [&](const QueryTrace& trace) {
      flood_messages += trace.result.messages;
    };
    driver.run_batch(flood, library.catalog(file), batch,
                     flood_stats.band(file, files));
    batch.trace_sink = nullptr;
    driver.run_batch(walker, library.catalog(file), batch,
                     walk_stats.band(file, files));
  }
  // ABF pass: route a smaller batch per band (router construction
  // dominates; one router per representative file).
  for (const std::size_t file : {std::size_t{0}, files / 2, files - 1}) {
    const AbfRouter router(csr, library.catalog(file), AbfOptions{});
    BatchQueryOptions batch;
    batch.queries = queries / 10;
    batch.seed = rng();
    driver.run_batch(router, library.catalog(file), batch,
                     abf_stats.band(file, files));
  }

  Table table({"mechanism", "popularity band", "success", "msgs/query",
               "median hit hops"});
  for (const auto* band : {"head", "torso", "tail"}) {
    const auto pick = [&](MechanismStats& s) -> QueryAggregate& {
      if (band == std::string("head")) return s.head;
      if (band == std::string("torso")) return s.torso;
      return s.tail;
    };
    print_stats(table, "flooding (TTL 4)", band, pick(flood_stats));
    print_stats(table, "16-walker random walk", band, pick(walk_stats));
    print_stats(table, "ABF routing (depth 3)", band, pick(abf_stats));
  }
  table.print(std::cout);

  std::cout << "\nflooding moved " << flood_messages
            << " messages in total (counted via the driver's trace sink).\n";
  std::cout << "\nreading the table: flooding buys recall with thousands "
               "of messages; random walks are cheap but miss rare files; "
               "ABF routing gets near-flood recall at random-walk cost "
               "because Makalu's expansion lets depth-3 filters cover a "
               "large neighborhood.\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
