// Protocol session: watch the distributed Makalu protocol at work.
//
// Boots a small network message by message, then zooms into one node's
// life: what it sent and received to join, who it is connected to, what
// its cached routing tables look like, how it rates its neighbors — and
// finally runs a query over the wire, timing the reverse-path hit.
//
//   $ ./protocol_session [--n=400] [--seed=3]
#include <algorithm>
#include <iostream>

#include "graph/algorithms.hpp"
#include "graph/metrics.hpp"
#include "net/latency_model.hpp"
#include "proto/network.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) try {
  using namespace makalu;
  using namespace makalu::proto;
  const CliOptions options(argc, argv);
  const std::size_t n = options.nodes(400);
  const std::uint64_t seed = options.seed(3);

  const EuclideanModel latency(n, seed);
  const ObjectCatalog catalog(n, 12, 0.02, seed ^ 1);

  std::cout << "== bootstrapping " << n
            << " nodes over the wire ==========\n";
  ProtocolNetwork network(latency, &catalog, ProtocolOptions{}, seed);
  const double converged = network.bootstrap_all();

  const Graph overlay = network.overlay_snapshot();
  const CsrGraph csr = CsrGraph::from_graph(overlay);
  std::cout << "converged after " << Table::num(converged / 1000.0, 1)
            << " s of simulated time; " << network.traffic().total_messages
            << " control messages ("
            << network.traffic().total_bytes / 1024 << " KiB)\n"
            << "emergent overlay: "
            << (is_connected(csr) ? "connected" : "NOT connected")
            << ", mean degree " << Table::num(degree_stats(csr).mean, 1)
            << "\n\n";

  // Zoom into one node.
  const NodeId hero = static_cast<NodeId>(n / 2);
  const ProtocolNode& node = network.node(hero);
  std::cout << "== node " << hero << " ==========================\n"
            << "capacity " << node.capacity() << ", connected to "
            << node.degree() << " peers:\n";
  Table peers({"peer", "latency", "cached table size", "local rating"});
  // Ratings from the node's own cached state — exactly what it would
  // compute before pruning.
  auto ratings = node.rate_locally();
  for (const auto& neighbor : node.neighbors()) {
    double score = 0.0;
    for (const auto& r : ratings) {
      if (r.peer == neighbor.peer) score = r.score;
    }
    peers.add_row({Table::integer(neighbor.peer),
                   Table::num(neighbor.latency_ms, 1),
                   Table::integer(static_cast<long long>(
                       neighbor.table.size())),
                   Table::num(score, 3)});
  }
  peers.print(std::cout);
  std::cout << "(the lowest-rated peer above is the one Manage() would "
               "prune first if a better candidate knocked)\n\n";

  std::cout << "== a query over the wire =======================\n";
  Rng rng(seed ^ 2);
  const auto object = static_cast<ObjectId>(rng.uniform_below(12));
  const QueryOutcome outcome = network.run_query(hero, object, 4);
  std::cout << "node " << hero << " floods a TTL-4 query for object "
            << object << ":\n"
            << "  " << (outcome.success ? "HIT" : "miss") << " — "
            << outcome.hits << " hit(s) returned via reverse path, first "
            << "after " << Table::num(outcome.response_ms, 1)
            << " latency units\n"
            << "  " << outcome.query_messages << " query transmissions, "
            << outcome.hit_messages << " hit transmissions\n\n";

  // The same session on a broken wire: 5% message loss plus a handful of
  // crash-stop failures mid-bootstrap, survived by the robustness layer
  // (handshake/walk retries + Ping/Pong keepalive with dead-peer
  // teardown and half-open reconciliation).
  std::cout << "== the same bootstrap on a faulty wire =========\n";
  ProtocolOptions robust;
  robust.robustness.enabled = true;
  ProtocolNetwork faulty(latency, &catalog, robust, seed);
  LinkFaultOptions link;
  link.loss = 0.05;
  link.jitter_ms = 2.0;
  FaultPlan plan(link, seed ^ 0xbad);
  plan.schedule_random_crashes(n, 0.05, 0.0,
                               static_cast<double>(n) * 5.0);
  faulty.attach_fault_plan(std::move(plan));
  faulty.bootstrap_all();

  const auto crashed = faulty.crashed_mask();
  const Graph survivors =
      faulty.overlay_snapshot().remove_nodes(crashed, nullptr);
  const CsrGraph live_csr = CsrGraph::from_graph(survivors);
  const auto& t = faulty.traffic();
  std::cout << "crashed " << std::count(crashed.begin(), crashed.end(), true)
            << " nodes and dropped " << t.dropped_messages
            << " messages; survivor overlay: "
            << (is_connected(live_csr) ? "connected" : "NOT connected")
            << ", mean degree "
            << Table::num(degree_stats(live_csr).mean, 1) << "\n"
            << "recovery bill: " << t.retransmissions
            << " retransmissions, " << t.dead_peers_detected
            << " dead peers detected, " << t.half_open_repairs
            << " half-open links repaired\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
