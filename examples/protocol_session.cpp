// Protocol session: watch the distributed Makalu protocol at work.
//
// Boots a small network message by message, then zooms into one node's
// life: what it sent and received to join, who it is connected to, what
// its cached routing tables look like, how it rates its neighbors — and
// finally runs a query over the wire, timing the reverse-path hit.
//
//   $ ./protocol_session [--n=400] [--seed=3]
#include <iostream>

#include "graph/algorithms.hpp"
#include "graph/metrics.hpp"
#include "net/latency_model.hpp"
#include "proto/network.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) try {
  using namespace makalu;
  using namespace makalu::proto;
  const CliOptions options(argc, argv);
  const std::size_t n = options.nodes(400);
  const std::uint64_t seed = options.seed(3);

  const EuclideanModel latency(n, seed);
  const ObjectCatalog catalog(n, 12, 0.02, seed ^ 1);

  std::cout << "== bootstrapping " << n
            << " nodes over the wire ==========\n";
  ProtocolNetwork network(latency, &catalog, ProtocolOptions{}, seed);
  const double converged = network.bootstrap_all();

  const Graph overlay = network.overlay_snapshot();
  const CsrGraph csr = CsrGraph::from_graph(overlay);
  std::cout << "converged after " << Table::num(converged / 1000.0, 1)
            << " s of simulated time; " << network.traffic().total_messages
            << " control messages ("
            << network.traffic().total_bytes / 1024 << " KiB)\n"
            << "emergent overlay: "
            << (is_connected(csr) ? "connected" : "NOT connected")
            << ", mean degree " << Table::num(degree_stats(csr).mean, 1)
            << "\n\n";

  // Zoom into one node.
  const NodeId hero = static_cast<NodeId>(n / 2);
  const ProtocolNode& node = network.node(hero);
  std::cout << "== node " << hero << " ==========================\n"
            << "capacity " << node.capacity() << ", connected to "
            << node.degree() << " peers:\n";
  Table peers({"peer", "latency", "cached table size", "local rating"});
  // Ratings from the node's own cached state — exactly what it would
  // compute before pruning.
  auto ratings = node.rate_locally();
  for (const auto& neighbor : node.neighbors()) {
    double score = 0.0;
    for (const auto& r : ratings) {
      if (r.peer == neighbor.peer) score = r.score;
    }
    peers.add_row({Table::integer(neighbor.peer),
                   Table::num(neighbor.latency_ms, 1),
                   Table::integer(static_cast<long long>(
                       neighbor.table.size())),
                   Table::num(score, 3)});
  }
  peers.print(std::cout);
  std::cout << "(the lowest-rated peer above is the one Manage() would "
               "prune first if a better candidate knocked)\n\n";

  std::cout << "== a query over the wire =======================\n";
  Rng rng(seed ^ 2);
  const auto object = static_cast<ObjectId>(rng.uniform_below(12));
  const QueryOutcome outcome = network.run_query(hero, object, 4);
  std::cout << "node " << hero << " floods a TTL-4 query for object "
            << object << ":\n"
            << "  " << (outcome.success ? "HIT" : "miss") << " — "
            << outcome.hits << " hit(s) returned via reverse path, first "
            << "after " << Table::num(outcome.response_ms, 1)
            << " latency units\n"
            << "  " << outcome.query_messages << " query transmissions, "
            << outcome.hit_messages << " hit transmissions\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
