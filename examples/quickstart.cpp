// Quickstart: build a Makalu overlay, look at its structure, and run one
// flooding search and one attenuated-Bloom-filter identifier search.
//
//   $ ./quickstart [--n=2000] [--seed=7]
//
// This walks through the library's three core steps:
//   1. pick a physical network model (pairwise latencies),
//   2. build the overlay with OverlayBuilder (the paper's contribution),
//   3. search it — flooding for wild-card queries, ABF routing for exact
//      identifiers.
#include <iostream>

#include "core/overlay_builder.hpp"
#include "graph/algorithms.hpp"
#include "graph/metrics.hpp"
#include "net/latency_model.hpp"
#include "search/abf_search.hpp"
#include "search/flood_search.hpp"
#include "sim/replica_placement.hpp"
#include "spectral/laplacian.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) try {
  using namespace makalu;
  const CliOptions options(argc, argv);
  const std::size_t n = options.nodes(2'000);
  const std::uint64_t seed = options.seed(7);

  std::cout << "== 1. physical network =========================\n";
  // Nodes live on a latency plane; the overlay only ever asks the model
  // for pairwise latencies, so swapping in "transit-stub" or "planetlab"
  // is a one-line change (see make_latency_model).
  const EuclideanModel latency(n, seed);
  std::cout << n << " nodes on a " << latency.extent() << "x"
            << latency.extent() << " latency plane\n\n";

  std::cout << "== 2. Makalu overlay ===========================\n";
  MakaluParameters params;  // alpha = beta = 1, capacities ~U[6,13]
  const OverlayBuilder builder(params);
  const MakaluOverlay overlay = builder.build(latency, seed);

  const CsrGraph csr = CsrGraph::from_graph(overlay.graph);
  const DegreeStats degrees = degree_stats(csr);
  PathMetricsOptions path_options;
  path_options.include_costs = false;
  const PathMetrics paths = compute_path_metrics(csr, path_options);
  std::cout << "edges: " << csr.edge_count()
            << ", mean degree: " << degrees.mean << " (min " << degrees.min
            << ", max " << degrees.max << ")\n"
            << "connected: " << (is_connected(csr) ? "yes" : "no")
            << ", diameter: " << paths.diameter_hops
            << " hops, characteristic path: "
            << paths.characteristic_path_hops << " hops\n"
            << "algebraic connectivity (lambda_1): "
            << algebraic_connectivity(csr)
            << "  (expander-grade; a power-law overlay sits near 0)\n\n";

  std::cout << "== 3a. wild-card search: flooding ==============\n";
  // 1% of nodes hold a replica of each of 20 objects.
  const ObjectCatalog catalog(n, 20, 0.01, seed ^ 1);
  FloodEngine flood(csr);
  FloodOptions flood_options;
  flood_options.ttl = 4;
  const FloodResult flood_result = flood.run(0, 0, catalog, flood_options);
  std::cout << "query from node 0 for object 0 (TTL 4): "
            << (flood_result.success ? "HIT" : "miss") << " after "
            << flood_result.first_hit_hop << " hops, "
            << flood_result.messages << " messages ("
            << flood_result.duplicates << " duplicates), "
            << flood_result.replicas_found << " replicas located\n\n";

  std::cout << "== 3b. identifier search: ABF routing ==========\n";
  // Depth-3 attenuated Bloom filters per link; queries walk greedily
  // toward the strongest filter match instead of flooding.
  AbfRouter router(csr, catalog, AbfOptions{});
  Rng rng(seed ^ 2);
  const QueryResult abf_result = router.route(0, 0, 25, rng);
  std::cout << "same query via attenuated Bloom filters: "
            << (abf_result.success ? "HIT" : "miss") << " after "
            << abf_result.messages << " messages (vs "
            << flood_result.messages << " for the flood)\n"
            << "routing state: " << router.table_bytes() / 1024
            << " KiB across all links ("
            << router.table_bytes() / (2 * csr.edge_count())
            << " B per directed link)\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
