// Fault tolerance and churn: the paper's §3.4 scenario, then one step
// beyond it — recovery.
//
// 1. Build Makalu and Gnutella v0.4 overlays over the same nodes.
// 2. Kill the most highly connected 10/20/30% of nodes instantly (the
//    paper's worst-case adversary) and compare the damage on the
//    immediate snapshot (no recovery), exactly as in Figure 1.
// 3. Then let Makalu recover: failed nodes re-join through the normal
//    join protocol and the survivors run maintenance rounds — showing
//    that the same local rules that build the overlay also heal it.
#include <iostream>

#include "core/overlay_builder.hpp"
#include "graph/algorithms.hpp"
#include "graph/metrics.hpp"
#include "net/latency_model.hpp"
#include "sim/failure.hpp"
#include "spectral/laplacian.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "topology/generators.hpp"

namespace {

using namespace makalu;

struct Damage {
  std::size_t components = 0;
  double giant_fraction = 0.0;
  double lambda1 = 0.0;
};

Damage assess(const Graph& survivors) {
  Damage d;
  const CsrGraph csr = CsrGraph::from_graph(survivors);
  const auto comps = connected_components(csr);
  d.components = comps.count;
  d.giant_fraction = static_cast<double>(comps.largest_size()) /
                     static_cast<double>(survivors.node_count());
  d.lambda1 = survivors.node_count() >= 2 ? algebraic_connectivity(csr) : 0;
  return d;
}

}  // namespace

int main(int argc, char** argv) try {
  const CliOptions options(argc, argv);
  const std::size_t n = options.nodes(3'000);
  const std::uint64_t seed = options.seed(21);

  const EuclideanModel latency(n, seed);
  MakaluParameters params;
  params.capacity_min = 10;  // the paper's §3 analysis configuration
  params.capacity_max = 14;
  const OverlayBuilder builder(params);
  const MakaluOverlay makalu = builder.build(latency, seed);
  const Graph power_law = PowerLawGenerator().generate(n, seed);

  std::cout << "targeted failures: killing the most-connected nodes "
               "(snapshot, no recovery)\n\n";
  Table table({"overlay", "failed", "components", "giant component",
               "lambda_1"});
  for (const double fraction : {0.1, 0.2, 0.3}) {
    for (const auto* which : {"Makalu", "Gnutella v0.4"}) {
      const Graph& graph =
          which == std::string("Makalu") ? makalu.graph : power_law;
      const auto failed = select_top_degree_failures(graph, fraction);
      const Graph survivors = apply_failures(graph, failed);
      const Damage d = assess(survivors);
      table.add_row({which, Table::percent(fraction, 0),
                     Table::integer(static_cast<long long>(d.components)),
                     Table::percent(d.giant_fraction),
                     Table::num(d.lambda1, 3)});
    }
  }
  table.print(std::cout);
  std::cout << "\nMakalu degrades gracefully (one component, lambda_1 "
               "stays expander-grade); the power-law overlay shatters when "
               "its hubs die.\n\n";

  // --- Recovery: the failed nodes come back and re-join. -----------------
  std::cout << "recovery: failed 30% re-join via the normal protocol\n\n";
  MakaluOverlay healing = builder.build(latency, seed);
  const auto failed = select_top_degree_failures(healing.graph, 0.3);
  for (NodeId v = 0; v < n; ++v) {
    if (failed[v]) healing.graph.isolate(v);
  }
  {
    // Post-failure: survivors only (isolated nodes excluded from metrics).
    const Graph snapshot = healing.graph.remove_nodes(failed);
    const Damage d = assess(snapshot);
    std::cout << "  after failure : giant "
              << Table::percent(d.giant_fraction) << ", lambda_1 "
              << Table::num(d.lambda1, 3) << "\n";
  }
  Rng rng(seed ^ 5);
  for (NodeId v = 0; v < n; ++v) {
    if (failed[v]) builder.join_node(healing, latency, v, rng);
  }
  builder.maintenance_round(healing, latency, rng);
  {
    const Damage d = assess(healing.graph);
    const auto degrees = degree_stats(CsrGraph::from_graph(healing.graph));
    std::cout << "  after re-join : giant "
              << Table::percent(d.giant_fraction) << ", lambda_1 "
              << Table::num(d.lambda1, 3) << ", mean degree "
              << Table::num(degrees.mean, 1) << "\n\n";
  }
  std::cout << "the same local join/manage rules that construct the "
               "overlay restore expander-grade connectivity after mass "
               "failure — no global coordination involved.\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
