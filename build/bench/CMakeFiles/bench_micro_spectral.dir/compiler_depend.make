# Empty compiler generated dependencies file for bench_micro_spectral.
# This may be replaced when dependencies are built.
