file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_spectral.dir/bench_micro_spectral.cpp.o"
  "CMakeFiles/bench_micro_spectral.dir/bench_micro_spectral.cpp.o.d"
  "bench_micro_spectral"
  "bench_micro_spectral.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_spectral.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
