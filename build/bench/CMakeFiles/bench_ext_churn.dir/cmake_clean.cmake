file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_churn.dir/bench_ext_churn.cpp.o"
  "CMakeFiles/bench_ext_churn.dir/bench_ext_churn.cpp.o.d"
  "bench_ext_churn"
  "bench_ext_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
