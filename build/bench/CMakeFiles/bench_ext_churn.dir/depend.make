# Empty dependencies file for bench_ext_churn.
# This may be replaced when dependencies are built.
