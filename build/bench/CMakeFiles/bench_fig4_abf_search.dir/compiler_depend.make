# Empty compiler generated dependencies file for bench_fig4_abf_search.
# This may be replaced when dependencies are built.
