file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_protocol.dir/bench_ext_protocol.cpp.o"
  "CMakeFiles/bench_ext_protocol.dir/bench_ext_protocol.cpp.o.d"
  "bench_ext_protocol"
  "bench_ext_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
