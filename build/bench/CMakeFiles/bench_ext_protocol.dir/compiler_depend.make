# Empty compiler generated dependencies file for bench_ext_protocol.
# This may be replaced when dependencies are built.
