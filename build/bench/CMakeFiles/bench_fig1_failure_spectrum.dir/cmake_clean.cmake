file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_failure_spectrum.dir/bench_fig1_failure_spectrum.cpp.o"
  "CMakeFiles/bench_fig1_failure_spectrum.dir/bench_fig1_failure_spectrum.cpp.o.d"
  "bench_fig1_failure_spectrum"
  "bench_fig1_failure_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_failure_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
