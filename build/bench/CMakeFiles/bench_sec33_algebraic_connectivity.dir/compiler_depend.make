# Empty compiler generated dependencies file for bench_sec33_algebraic_connectivity.
# This may be replaced when dependencies are built.
