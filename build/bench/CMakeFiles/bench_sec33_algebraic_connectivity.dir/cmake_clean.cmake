file(REMOVE_RECURSE
  "CMakeFiles/bench_sec33_algebraic_connectivity.dir/bench_sec33_algebraic_connectivity.cpp.o"
  "CMakeFiles/bench_sec33_algebraic_connectivity.dir/bench_sec33_algebraic_connectivity.cpp.o.d"
  "bench_sec33_algebraic_connectivity"
  "bench_sec33_algebraic_connectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec33_algebraic_connectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
