# Empty compiler generated dependencies file for bench_table1_flooding.
# This may be replaced when dependencies are built.
