file(REMOVE_RECURSE
  "CMakeFiles/bench_sec44_low_replication.dir/bench_sec44_low_replication.cpp.o"
  "CMakeFiles/bench_sec44_low_replication.dir/bench_sec44_low_replication.cpp.o.d"
  "bench_sec44_low_replication"
  "bench_sec44_low_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec44_low_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
