# Empty compiler generated dependencies file for bench_sec44_low_replication.
# This may be replaced when dependencies are built.
