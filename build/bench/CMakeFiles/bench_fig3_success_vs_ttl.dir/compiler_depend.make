# Empty compiler generated dependencies file for bench_fig3_success_vs_ttl.
# This may be replaced when dependencies are built.
