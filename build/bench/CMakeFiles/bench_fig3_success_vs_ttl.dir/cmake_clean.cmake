file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_success_vs_ttl.dir/bench_fig3_success_vs_ttl.cpp.o"
  "CMakeFiles/bench_fig3_success_vs_ttl.dir/bench_fig3_success_vs_ttl.cpp.o.d"
  "bench_fig3_success_vs_ttl"
  "bench_fig3_success_vs_ttl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_success_vs_ttl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
