# Empty compiler generated dependencies file for bench_sec43_flood_efficiency.
# This may be replaced when dependencies are built.
