file(REMOVE_RECURSE
  "CMakeFiles/bench_sec43_flood_efficiency.dir/bench_sec43_flood_efficiency.cpp.o"
  "CMakeFiles/bench_sec43_flood_efficiency.dir/bench_sec43_flood_efficiency.cpp.o.d"
  "bench_sec43_flood_efficiency"
  "bench_sec43_flood_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec43_flood_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
