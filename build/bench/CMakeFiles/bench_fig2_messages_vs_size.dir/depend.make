# Empty dependencies file for bench_fig2_messages_vs_size.
# This may be replaced when dependencies are built.
