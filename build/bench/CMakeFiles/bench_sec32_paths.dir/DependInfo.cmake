
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_sec32_paths.cpp" "bench/CMakeFiles/bench_sec32_paths.dir/bench_sec32_paths.cpp.o" "gcc" "bench/CMakeFiles/bench_sec32_paths.dir/bench_sec32_paths.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/makalu_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/makalu_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/makalu_dht.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/makalu_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/makalu_search.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/makalu_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/makalu_spectral.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/makalu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/makalu_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/makalu_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/makalu_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/makalu_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/makalu_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
