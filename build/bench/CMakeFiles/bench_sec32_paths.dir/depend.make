# Empty dependencies file for bench_sec32_paths.
# This may be replaced when dependencies are built.
