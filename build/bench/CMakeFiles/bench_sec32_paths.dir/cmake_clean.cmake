file(REMOVE_RECURSE
  "CMakeFiles/bench_sec32_paths.dir/bench_sec32_paths.cpp.o"
  "CMakeFiles/bench_sec32_paths.dir/bench_sec32_paths.cpp.o.d"
  "bench_sec32_paths"
  "bench_sec32_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec32_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
