file(REMOVE_RECURSE
  "CMakeFiles/churn_failure.dir/churn_failure.cpp.o"
  "CMakeFiles/churn_failure.dir/churn_failure.cpp.o.d"
  "churn_failure"
  "churn_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/churn_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
