# Empty compiler generated dependencies file for churn_failure.
# This may be replaced when dependencies are built.
