file(REMOVE_RECURSE
  "CMakeFiles/filesharing_search.dir/filesharing_search.cpp.o"
  "CMakeFiles/filesharing_search.dir/filesharing_search.cpp.o.d"
  "filesharing_search"
  "filesharing_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filesharing_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
