# Empty dependencies file for filesharing_search.
# This may be replaced when dependencies are built.
