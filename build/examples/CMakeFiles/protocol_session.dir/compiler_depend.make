# Empty compiler generated dependencies file for protocol_session.
# This may be replaced when dependencies are built.
