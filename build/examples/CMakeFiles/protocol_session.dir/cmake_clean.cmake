file(REMOVE_RECURSE
  "CMakeFiles/protocol_session.dir/protocol_session.cpp.o"
  "CMakeFiles/protocol_session.dir/protocol_session.cpp.o.d"
  "protocol_session"
  "protocol_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
