file(REMOVE_RECURSE
  "libmakalu_proto.a"
)
