# Empty compiler generated dependencies file for makalu_proto.
# This may be replaced when dependencies are built.
