file(REMOVE_RECURSE
  "CMakeFiles/makalu_proto.dir/proto/message.cpp.o"
  "CMakeFiles/makalu_proto.dir/proto/message.cpp.o.d"
  "CMakeFiles/makalu_proto.dir/proto/network.cpp.o"
  "CMakeFiles/makalu_proto.dir/proto/network.cpp.o.d"
  "CMakeFiles/makalu_proto.dir/proto/node.cpp.o"
  "CMakeFiles/makalu_proto.dir/proto/node.cpp.o.d"
  "libmakalu_proto.a"
  "libmakalu_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/makalu_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
