file(REMOVE_RECURSE
  "CMakeFiles/makalu_analysis.dir/analysis/abf_experiments.cpp.o"
  "CMakeFiles/makalu_analysis.dir/analysis/abf_experiments.cpp.o.d"
  "CMakeFiles/makalu_analysis.dir/analysis/flood_experiments.cpp.o"
  "CMakeFiles/makalu_analysis.dir/analysis/flood_experiments.cpp.o.d"
  "CMakeFiles/makalu_analysis.dir/analysis/spectral_experiments.cpp.o"
  "CMakeFiles/makalu_analysis.dir/analysis/spectral_experiments.cpp.o.d"
  "CMakeFiles/makalu_analysis.dir/analysis/topology_factory.cpp.o"
  "CMakeFiles/makalu_analysis.dir/analysis/topology_factory.cpp.o.d"
  "CMakeFiles/makalu_analysis.dir/analysis/traffic_comparison.cpp.o"
  "CMakeFiles/makalu_analysis.dir/analysis/traffic_comparison.cpp.o.d"
  "libmakalu_analysis.a"
  "libmakalu_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/makalu_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
