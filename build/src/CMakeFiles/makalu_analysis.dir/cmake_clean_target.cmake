file(REMOVE_RECURSE
  "libmakalu_analysis.a"
)
