# Empty compiler generated dependencies file for makalu_analysis.
# This may be replaced when dependencies are built.
