file(REMOVE_RECURSE
  "CMakeFiles/makalu_trace.dir/trace/gnutella_traffic.cpp.o"
  "CMakeFiles/makalu_trace.dir/trace/gnutella_traffic.cpp.o.d"
  "CMakeFiles/makalu_trace.dir/trace/synthetic_trace.cpp.o"
  "CMakeFiles/makalu_trace.dir/trace/synthetic_trace.cpp.o.d"
  "libmakalu_trace.a"
  "libmakalu_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/makalu_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
