file(REMOVE_RECURSE
  "libmakalu_trace.a"
)
