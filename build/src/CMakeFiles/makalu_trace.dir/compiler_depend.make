# Empty compiler generated dependencies file for makalu_trace.
# This may be replaced when dependencies are built.
