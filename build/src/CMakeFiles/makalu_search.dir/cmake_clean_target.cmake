file(REMOVE_RECURSE
  "libmakalu_search.a"
)
