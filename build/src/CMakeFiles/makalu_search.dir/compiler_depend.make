# Empty compiler generated dependencies file for makalu_search.
# This may be replaced when dependencies are built.
