file(REMOVE_RECURSE
  "CMakeFiles/makalu_search.dir/search/abf_search.cpp.o"
  "CMakeFiles/makalu_search.dir/search/abf_search.cpp.o.d"
  "CMakeFiles/makalu_search.dir/search/churn.cpp.o"
  "CMakeFiles/makalu_search.dir/search/churn.cpp.o.d"
  "CMakeFiles/makalu_search.dir/search/flood_search.cpp.o"
  "CMakeFiles/makalu_search.dir/search/flood_search.cpp.o.d"
  "CMakeFiles/makalu_search.dir/search/gossip_flood.cpp.o"
  "CMakeFiles/makalu_search.dir/search/gossip_flood.cpp.o.d"
  "CMakeFiles/makalu_search.dir/search/random_walk_search.cpp.o"
  "CMakeFiles/makalu_search.dir/search/random_walk_search.cpp.o.d"
  "CMakeFiles/makalu_search.dir/search/timed_flood.cpp.o"
  "CMakeFiles/makalu_search.dir/search/timed_flood.cpp.o.d"
  "CMakeFiles/makalu_search.dir/search/ttl_policy.cpp.o"
  "CMakeFiles/makalu_search.dir/search/ttl_policy.cpp.o.d"
  "CMakeFiles/makalu_search.dir/search/two_tier_flood.cpp.o"
  "CMakeFiles/makalu_search.dir/search/two_tier_flood.cpp.o.d"
  "libmakalu_search.a"
  "libmakalu_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/makalu_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
