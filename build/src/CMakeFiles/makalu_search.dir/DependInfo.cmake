
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/search/abf_search.cpp" "src/CMakeFiles/makalu_search.dir/search/abf_search.cpp.o" "gcc" "src/CMakeFiles/makalu_search.dir/search/abf_search.cpp.o.d"
  "/root/repo/src/search/churn.cpp" "src/CMakeFiles/makalu_search.dir/search/churn.cpp.o" "gcc" "src/CMakeFiles/makalu_search.dir/search/churn.cpp.o.d"
  "/root/repo/src/search/flood_search.cpp" "src/CMakeFiles/makalu_search.dir/search/flood_search.cpp.o" "gcc" "src/CMakeFiles/makalu_search.dir/search/flood_search.cpp.o.d"
  "/root/repo/src/search/gossip_flood.cpp" "src/CMakeFiles/makalu_search.dir/search/gossip_flood.cpp.o" "gcc" "src/CMakeFiles/makalu_search.dir/search/gossip_flood.cpp.o.d"
  "/root/repo/src/search/random_walk_search.cpp" "src/CMakeFiles/makalu_search.dir/search/random_walk_search.cpp.o" "gcc" "src/CMakeFiles/makalu_search.dir/search/random_walk_search.cpp.o.d"
  "/root/repo/src/search/timed_flood.cpp" "src/CMakeFiles/makalu_search.dir/search/timed_flood.cpp.o" "gcc" "src/CMakeFiles/makalu_search.dir/search/timed_flood.cpp.o.d"
  "/root/repo/src/search/ttl_policy.cpp" "src/CMakeFiles/makalu_search.dir/search/ttl_policy.cpp.o" "gcc" "src/CMakeFiles/makalu_search.dir/search/ttl_policy.cpp.o.d"
  "/root/repo/src/search/two_tier_flood.cpp" "src/CMakeFiles/makalu_search.dir/search/two_tier_flood.cpp.o" "gcc" "src/CMakeFiles/makalu_search.dir/search/two_tier_flood.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/makalu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/makalu_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/makalu_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/makalu_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/makalu_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/makalu_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/makalu_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
