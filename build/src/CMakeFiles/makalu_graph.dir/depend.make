# Empty dependencies file for makalu_graph.
# This may be replaced when dependencies are built.
