file(REMOVE_RECURSE
  "libmakalu_graph.a"
)
