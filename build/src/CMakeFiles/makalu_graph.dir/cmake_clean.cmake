file(REMOVE_RECURSE
  "CMakeFiles/makalu_graph.dir/graph/algorithms.cpp.o"
  "CMakeFiles/makalu_graph.dir/graph/algorithms.cpp.o.d"
  "CMakeFiles/makalu_graph.dir/graph/graph.cpp.o"
  "CMakeFiles/makalu_graph.dir/graph/graph.cpp.o.d"
  "CMakeFiles/makalu_graph.dir/graph/io.cpp.o"
  "CMakeFiles/makalu_graph.dir/graph/io.cpp.o.d"
  "CMakeFiles/makalu_graph.dir/graph/metrics.cpp.o"
  "CMakeFiles/makalu_graph.dir/graph/metrics.cpp.o.d"
  "libmakalu_graph.a"
  "libmakalu_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/makalu_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
