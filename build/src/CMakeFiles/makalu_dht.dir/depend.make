# Empty dependencies file for makalu_dht.
# This may be replaced when dependencies are built.
