file(REMOVE_RECURSE
  "CMakeFiles/makalu_dht.dir/dht/chord.cpp.o"
  "CMakeFiles/makalu_dht.dir/dht/chord.cpp.o.d"
  "libmakalu_dht.a"
  "libmakalu_dht.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/makalu_dht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
