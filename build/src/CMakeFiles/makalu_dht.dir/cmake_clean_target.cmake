file(REMOVE_RECURSE
  "libmakalu_dht.a"
)
