
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/generators.cpp" "src/CMakeFiles/makalu_topology.dir/topology/generators.cpp.o" "gcc" "src/CMakeFiles/makalu_topology.dir/topology/generators.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/makalu_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/makalu_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/makalu_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
