file(REMOVE_RECURSE
  "CMakeFiles/makalu_topology.dir/topology/generators.cpp.o"
  "CMakeFiles/makalu_topology.dir/topology/generators.cpp.o.d"
  "libmakalu_topology.a"
  "libmakalu_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/makalu_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
