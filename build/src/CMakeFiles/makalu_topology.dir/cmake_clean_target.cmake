file(REMOVE_RECURSE
  "libmakalu_topology.a"
)
