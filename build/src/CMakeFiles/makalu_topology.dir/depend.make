# Empty dependencies file for makalu_topology.
# This may be replaced when dependencies are built.
