file(REMOVE_RECURSE
  "CMakeFiles/makalu_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/makalu_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/makalu_sim.dir/sim/failure.cpp.o"
  "CMakeFiles/makalu_sim.dir/sim/failure.cpp.o.d"
  "CMakeFiles/makalu_sim.dir/sim/replica_placement.cpp.o"
  "CMakeFiles/makalu_sim.dir/sim/replica_placement.cpp.o.d"
  "libmakalu_sim.a"
  "libmakalu_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/makalu_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
