file(REMOVE_RECURSE
  "libmakalu_sim.a"
)
