# Empty compiler generated dependencies file for makalu_sim.
# This may be replaced when dependencies are built.
