# Empty dependencies file for makalu_net.
# This may be replaced when dependencies are built.
