file(REMOVE_RECURSE
  "libmakalu_net.a"
)
