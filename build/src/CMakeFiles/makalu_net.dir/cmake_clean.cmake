file(REMOVE_RECURSE
  "CMakeFiles/makalu_net.dir/net/latency_model.cpp.o"
  "CMakeFiles/makalu_net.dir/net/latency_model.cpp.o.d"
  "libmakalu_net.a"
  "libmakalu_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/makalu_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
