file(REMOVE_RECURSE
  "libmakalu_spectral.a"
)
