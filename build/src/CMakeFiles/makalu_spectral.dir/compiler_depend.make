# Empty compiler generated dependencies file for makalu_spectral.
# This may be replaced when dependencies are built.
