file(REMOVE_RECURSE
  "CMakeFiles/makalu_spectral.dir/spectral/eigen.cpp.o"
  "CMakeFiles/makalu_spectral.dir/spectral/eigen.cpp.o.d"
  "CMakeFiles/makalu_spectral.dir/spectral/laplacian.cpp.o"
  "CMakeFiles/makalu_spectral.dir/spectral/laplacian.cpp.o.d"
  "libmakalu_spectral.a"
  "libmakalu_spectral.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/makalu_spectral.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
