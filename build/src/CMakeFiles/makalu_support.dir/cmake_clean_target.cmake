file(REMOVE_RECURSE
  "libmakalu_support.a"
)
