# Empty compiler generated dependencies file for makalu_support.
# This may be replaced when dependencies are built.
