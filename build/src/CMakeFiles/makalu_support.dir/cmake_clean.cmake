file(REMOVE_RECURSE
  "CMakeFiles/makalu_support.dir/support/cli.cpp.o"
  "CMakeFiles/makalu_support.dir/support/cli.cpp.o.d"
  "CMakeFiles/makalu_support.dir/support/rng.cpp.o"
  "CMakeFiles/makalu_support.dir/support/rng.cpp.o.d"
  "CMakeFiles/makalu_support.dir/support/stats.cpp.o"
  "CMakeFiles/makalu_support.dir/support/stats.cpp.o.d"
  "CMakeFiles/makalu_support.dir/support/table.cpp.o"
  "CMakeFiles/makalu_support.dir/support/table.cpp.o.d"
  "CMakeFiles/makalu_support.dir/support/thread_pool.cpp.o"
  "CMakeFiles/makalu_support.dir/support/thread_pool.cpp.o.d"
  "libmakalu_support.a"
  "libmakalu_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/makalu_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
