# Empty compiler generated dependencies file for makalu_bloom.
# This may be replaced when dependencies are built.
