file(REMOVE_RECURSE
  "CMakeFiles/makalu_bloom.dir/bloom/attenuated_bloom_filter.cpp.o"
  "CMakeFiles/makalu_bloom.dir/bloom/attenuated_bloom_filter.cpp.o.d"
  "CMakeFiles/makalu_bloom.dir/bloom/bloom_filter.cpp.o"
  "CMakeFiles/makalu_bloom.dir/bloom/bloom_filter.cpp.o.d"
  "CMakeFiles/makalu_bloom.dir/bloom/counting_bloom_filter.cpp.o"
  "CMakeFiles/makalu_bloom.dir/bloom/counting_bloom_filter.cpp.o.d"
  "libmakalu_bloom.a"
  "libmakalu_bloom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/makalu_bloom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
