file(REMOVE_RECURSE
  "libmakalu_bloom.a"
)
