file(REMOVE_RECURSE
  "libmakalu_core.a"
)
