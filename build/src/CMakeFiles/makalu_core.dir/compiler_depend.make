# Empty compiler generated dependencies file for makalu_core.
# This may be replaced when dependencies are built.
