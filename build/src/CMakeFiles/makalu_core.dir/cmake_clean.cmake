file(REMOVE_RECURSE
  "CMakeFiles/makalu_core.dir/core/overlay_builder.cpp.o"
  "CMakeFiles/makalu_core.dir/core/overlay_builder.cpp.o.d"
  "CMakeFiles/makalu_core.dir/core/overlay_io.cpp.o"
  "CMakeFiles/makalu_core.dir/core/overlay_io.cpp.o.d"
  "CMakeFiles/makalu_core.dir/core/rating.cpp.o"
  "CMakeFiles/makalu_core.dir/core/rating.cpp.o.d"
  "libmakalu_core.a"
  "libmakalu_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/makalu_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
