
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/abf_test.cpp" "tests/CMakeFiles/makalu_tests.dir/abf_test.cpp.o" "gcc" "tests/CMakeFiles/makalu_tests.dir/abf_test.cpp.o.d"
  "/root/repo/tests/analysis_test.cpp" "tests/CMakeFiles/makalu_tests.dir/analysis_test.cpp.o" "gcc" "tests/CMakeFiles/makalu_tests.dir/analysis_test.cpp.o.d"
  "/root/repo/tests/bloom_test.cpp" "tests/CMakeFiles/makalu_tests.dir/bloom_test.cpp.o" "gcc" "tests/CMakeFiles/makalu_tests.dir/bloom_test.cpp.o.d"
  "/root/repo/tests/chord_test.cpp" "tests/CMakeFiles/makalu_tests.dir/chord_test.cpp.o" "gcc" "tests/CMakeFiles/makalu_tests.dir/chord_test.cpp.o.d"
  "/root/repo/tests/churn_test.cpp" "tests/CMakeFiles/makalu_tests.dir/churn_test.cpp.o" "gcc" "tests/CMakeFiles/makalu_tests.dir/churn_test.cpp.o.d"
  "/root/repo/tests/contracts_test.cpp" "tests/CMakeFiles/makalu_tests.dir/contracts_test.cpp.o" "gcc" "tests/CMakeFiles/makalu_tests.dir/contracts_test.cpp.o.d"
  "/root/repo/tests/counting_bloom_test.cpp" "tests/CMakeFiles/makalu_tests.dir/counting_bloom_test.cpp.o" "gcc" "tests/CMakeFiles/makalu_tests.dir/counting_bloom_test.cpp.o.d"
  "/root/repo/tests/flood_test.cpp" "tests/CMakeFiles/makalu_tests.dir/flood_test.cpp.o" "gcc" "tests/CMakeFiles/makalu_tests.dir/flood_test.cpp.o.d"
  "/root/repo/tests/gossip_flood_test.cpp" "tests/CMakeFiles/makalu_tests.dir/gossip_flood_test.cpp.o" "gcc" "tests/CMakeFiles/makalu_tests.dir/gossip_flood_test.cpp.o.d"
  "/root/repo/tests/graph_test.cpp" "tests/CMakeFiles/makalu_tests.dir/graph_test.cpp.o" "gcc" "tests/CMakeFiles/makalu_tests.dir/graph_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/makalu_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/makalu_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/io_test.cpp" "tests/CMakeFiles/makalu_tests.dir/io_test.cpp.o" "gcc" "tests/CMakeFiles/makalu_tests.dir/io_test.cpp.o.d"
  "/root/repo/tests/net_test.cpp" "tests/CMakeFiles/makalu_tests.dir/net_test.cpp.o" "gcc" "tests/CMakeFiles/makalu_tests.dir/net_test.cpp.o.d"
  "/root/repo/tests/overlay_builder_test.cpp" "tests/CMakeFiles/makalu_tests.dir/overlay_builder_test.cpp.o" "gcc" "tests/CMakeFiles/makalu_tests.dir/overlay_builder_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/makalu_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/makalu_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/proto_test.cpp" "tests/CMakeFiles/makalu_tests.dir/proto_test.cpp.o" "gcc" "tests/CMakeFiles/makalu_tests.dir/proto_test.cpp.o.d"
  "/root/repo/tests/random_walk_test.cpp" "tests/CMakeFiles/makalu_tests.dir/random_walk_test.cpp.o" "gcc" "tests/CMakeFiles/makalu_tests.dir/random_walk_test.cpp.o.d"
  "/root/repo/tests/rating_test.cpp" "tests/CMakeFiles/makalu_tests.dir/rating_test.cpp.o" "gcc" "tests/CMakeFiles/makalu_tests.dir/rating_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/makalu_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/makalu_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/spectral_test.cpp" "tests/CMakeFiles/makalu_tests.dir/spectral_test.cpp.o" "gcc" "tests/CMakeFiles/makalu_tests.dir/spectral_test.cpp.o.d"
  "/root/repo/tests/support_test.cpp" "tests/CMakeFiles/makalu_tests.dir/support_test.cpp.o" "gcc" "tests/CMakeFiles/makalu_tests.dir/support_test.cpp.o.d"
  "/root/repo/tests/thread_pool_test.cpp" "tests/CMakeFiles/makalu_tests.dir/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/makalu_tests.dir/thread_pool_test.cpp.o.d"
  "/root/repo/tests/timed_flood_test.cpp" "tests/CMakeFiles/makalu_tests.dir/timed_flood_test.cpp.o" "gcc" "tests/CMakeFiles/makalu_tests.dir/timed_flood_test.cpp.o.d"
  "/root/repo/tests/topology_test.cpp" "tests/CMakeFiles/makalu_tests.dir/topology_test.cpp.o" "gcc" "tests/CMakeFiles/makalu_tests.dir/topology_test.cpp.o.d"
  "/root/repo/tests/trace_test.cpp" "tests/CMakeFiles/makalu_tests.dir/trace_test.cpp.o" "gcc" "tests/CMakeFiles/makalu_tests.dir/trace_test.cpp.o.d"
  "/root/repo/tests/ttl_policy_test.cpp" "tests/CMakeFiles/makalu_tests.dir/ttl_policy_test.cpp.o" "gcc" "tests/CMakeFiles/makalu_tests.dir/ttl_policy_test.cpp.o.d"
  "/root/repo/tests/two_tier_test.cpp" "tests/CMakeFiles/makalu_tests.dir/two_tier_test.cpp.o" "gcc" "tests/CMakeFiles/makalu_tests.dir/two_tier_test.cpp.o.d"
  "/root/repo/tests/umbrella_test.cpp" "tests/CMakeFiles/makalu_tests.dir/umbrella_test.cpp.o" "gcc" "tests/CMakeFiles/makalu_tests.dir/umbrella_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/makalu_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/makalu_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/makalu_dht.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/makalu_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/makalu_search.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/makalu_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/makalu_spectral.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/makalu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/makalu_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/makalu_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/makalu_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/makalu_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/makalu_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
