# Empty compiler generated dependencies file for makalu_tests.
# This may be replaced when dependencies are built.
