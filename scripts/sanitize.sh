#!/usr/bin/env bash
# Sanitizer job: build the library + tests under ASan/UBSan and run the
# full ctest suite. Used locally and as the CI sanitize step.
#
#   scripts/sanitize.sh [extra cmake args...]
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-sanitize}
SANITIZERS=${SANITIZERS:-address,undefined}

cmake -B "${BUILD_DIR}" -S . \
  -DMAKALU_SANITIZE="${SANITIZERS}" \
  -DMAKALU_BUILD_BENCH=OFF \
  -DMAKALU_BUILD_EXAMPLES=OFF \
  "$@"
cmake --build "${BUILD_DIR}" -j "$(nproc)"

# halt_on_error makes UBSan findings fail the job instead of just logging.
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export ASAN_OPTIONS="detect_leaks=1"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"
