#!/usr/bin/env bash
# Sanitizer job: build the library + tests under a sanitizer configuration
# and run ctest. Used locally and as the CI sanitize step.
#
#   scripts/sanitize.sh [asan|tsan] [extra cmake args...]
#
# asan (default): ASan+UBSan over the full suite — memory errors, UB,
#                 leaks.
# tsan:           ThreadSanitizer over the concurrency-heavy tests
#                 (thread pool, deterministic parallel sweeps, cache
#                 scratch engines) — data races in the parallel
#                 maintenance path. TSan and ASan cannot be combined in
#                 one binary, hence the separate mode and build tree.
set -euo pipefail

cd "$(dirname "$0")/.."

MODE=asan
if [[ $# -gt 0 && ( "$1" == "asan" || "$1" == "tsan" ) ]]; then
  MODE=$1
  shift
fi

if [[ "${MODE}" == "tsan" ]]; then
  BUILD_DIR=${BUILD_DIR:-build-tsan}
  SANITIZERS=${SANITIZERS:-thread}
  # The races TSan can find live in the threaded code paths; default to
  # the tests that exercise them so the job stays fast. Fault and proto
  # tests ride along: the fault-injected churn runs drive the parallel
  # maintenance sweeps, and the timer/retry/keepalive machinery must stay
  # clean under the threaded build. Obs covers the sharded metrics
  # registry, whose whole design claim is "no cross-thread writes in the
  # hot path" — TSan is the referee for that claim. Override with
  # TSAN_TEST_FILTER='.*' for a full-suite run.
  # Batched covers the shared-frontier batched driver/differential tests
  # (BatchedDriverDifferential runs the 64-wide kernel under 2/8-thread
  # pools; the arena match kernels ride along in the same binary).
  # TableDifferential runs the blocked/pooled ABF routers under 2/8-thread
  # driver pools; the counting-maintenance suites ride in the same binary.
  # The live-transport stack (Codec framing, TimerWheel, Loopback hub,
  # UdpTransport poll loop, FaultShim, Cluster harness incl. the spawned
  # TSan-built makalu_node processes) is single-threaded by design but
  # signal- and poll-driven; keeping it in the TSan job guards the
  # "no hidden threads" claim as the net/ layer grows.
  # Workload/Arrival/Catalog/Saturation cover the open-loop engine: the
  # thread-count-invariance suites drive ParallelQueryDriver at 2/8
  # threads through the workload admission path.
  TSAN_TEST_FILTER=${TSAN_TEST_FILTER:-'ThreadPool|Determinism|Parallel|Churn|Fault|SeenQuery|ProtoNetwork|Obs|Batched|BatchStamp|CompactGraph|Storage|Scale|TableDifferential|BlockedDelta|CountingAbf|Codec|TimerWheel|Loopback|UdpTransport|FaultShim|Cluster|Workload|Arrival|Catalog|Saturation'}
else
  BUILD_DIR=${BUILD_DIR:-build-sanitize}
  SANITIZERS=${SANITIZERS:-address,undefined}
fi

cmake -B "${BUILD_DIR}" -S . \
  -DMAKALU_SANITIZE="${SANITIZERS}" \
  -DMAKALU_BUILD_BENCH=OFF \
  -DMAKALU_BUILD_EXAMPLES=OFF \
  "$@"
cmake --build "${BUILD_DIR}" -j "$(nproc)"

# halt_on_error makes sanitizer findings fail the job instead of just
# logging.
if [[ "${MODE}" == "tsan" ]]; then
  export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
  ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)" \
    -R "${TSAN_TEST_FILTER}"
else
  export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
  export ASAN_OPTIONS="detect_leaks=1"
  ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"
fi
