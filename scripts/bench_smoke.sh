#!/usr/bin/env bash
# Smoke-run one experiment bench with --json and validate the emitted
# report. Invoked by the `bench_smoke`-labelled ctest entries (see
# bench/CMakeLists.txt):
#
#   scripts/bench_smoke.sh <bench-binary> <out.json> [bench args...]
#
# The bench's table output is discarded — the test's contract is "the
# binary exits 0 at a tiny scale and its --json document satisfies
# makalu.bench.v1" (scripts/check_bench_json.py), not any particular
# measured value.
set -euo pipefail

if [[ $# -lt 2 ]]; then
  echo "usage: $0 <bench-binary> <out.json> [bench args...]" >&2
  exit 2
fi

BIN=$1
OUT=$2
shift 2

"${BIN}" "$@" --json "${OUT}" > /dev/null
exec python3 "$(dirname "$0")/check_bench_json.py" "${OUT}"
