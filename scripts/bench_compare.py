#!/usr/bin/env python3
"""Compare two BENCH_*.json reports and fail on regressions.

Usage:
    scripts/bench_compare.py BASELINE.json CANDIDATE.json [options]

Both files must be makalu.bench.v1 documents produced by running a bench
with --json (see EXPERIMENTS.md). The tool diffs the metrics sections and
exits non-zero when any metric moved by more than the threshold, which
makes it usable as a CI gate:

    build/bench/bench_sec43_flood_efficiency --json new.json
    scripts/bench_compare.py baseline.json new.json --threshold 0.05

What is compared
  * counters and gauges: relative change |new - old| / max(|old|, eps).
  * histograms: relative change of `count` and of the mean (sum/count);
    per-bucket counts are reported in --verbose mode but never gate.
  * wall_ms and per-phase timings: reported, but only gate with
    --include-timings (wall clock is noisy across machines; the
    deterministic metrics are the reliable signal).

A metric present on one side only is a structural change and always
fails (unless --allow-missing). Comparing reports from different benches
is almost certainly a mistake and fails immediately.

Absolute floors/ceilings (--require) gate the candidate alone, so wins
measured *inside* one run can be locked in against regression without a
stored baseline. The arena/batching speedup gauges use this:

    scripts/bench_compare.py base.json new.json \
        --require 'micro_flood.speedup>=5' \
        --require 'micro_abf.speedup>=1.5'

fails whenever the candidate's gauge drops below the floor (or rises
above a '<=' ceiling), whatever the baseline said.
"""

from __future__ import annotations

import argparse
import json
import math
import sys

SCHEMA = "makalu.bench.v1"
EPS = 1e-12


def load_report(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"error: cannot read {path}: {exc}")
    if doc.get("schema") != SCHEMA:
        sys.exit(
            f"error: {path}: schema {doc.get('schema')!r}, expected {SCHEMA!r}"
        )
    return doc


def rel_change(old: float, new: float) -> float:
    if math.isclose(old, new, rel_tol=1e-9, abs_tol=EPS):
        return 0.0
    return abs(new - old) / max(abs(old), EPS)


def scalar_value(metric: dict) -> float | None:
    if metric.get("kind") in ("counter", "gauge"):
        return float(metric["value"])
    return None


def compare_metrics(base: dict, cand: dict, args) -> list[str]:
    """Returns the list of human-readable regression lines."""
    regressions: list[str] = []
    names = sorted(set(base) | set(cand))
    for name in names:
        if name not in base or name not in cand:
            side = "baseline" if name not in cand else "candidate"
            line = f"metric {name!r} missing from {side}"
            if args.allow_missing:
                if args.verbose:
                    print(f"  note: {line}")
            else:
                regressions.append(line)
            continue
        b, c = base[name], cand[name]
        if b.get("kind") != c.get("kind"):
            regressions.append(
                f"metric {name!r} changed kind: "
                f"{b.get('kind')} -> {c.get('kind')}"
            )
            continue
        if b.get("kind") == "histogram":
            pairs = [("count", b["count"], c["count"])]
            b_mean = b["sum"] / b["count"] if b["count"] else 0.0
            c_mean = c["sum"] / c["count"] if c["count"] else 0.0
            pairs.append(("mean", b_mean, c_mean))
            for label, old, new in pairs:
                change = rel_change(old, new)
                if args.verbose or change > args.threshold:
                    print(
                        f"  {name}.{label}: {old:g} -> {new:g} "
                        f"({change * 100.0:+.1f}%)"
                    )
                if change > args.threshold:
                    regressions.append(
                        f"{name}.{label}: {old:g} -> {new:g} "
                        f"exceeds {args.threshold * 100.0:.1f}%"
                    )
        else:
            old, new = scalar_value(b), scalar_value(c)
            if old is None or new is None:
                regressions.append(f"metric {name!r} has unknown kind")
                continue
            change = rel_change(old, new)
            if args.verbose or change > args.threshold:
                print(f"  {name}: {old:g} -> {new:g} ({change * 100.0:+.1f}%)")
            if change > args.threshold:
                regressions.append(
                    f"{name}: {old:g} -> {new:g} "
                    f"exceeds {args.threshold * 100.0:.1f}%"
                )
    return regressions


def parse_requirement(spec: str, flag: str = "--require"
                      ) -> tuple[str, str, float]:
    """Splits 'name>=value' / 'name<=value' into (name, op, value)."""
    for op in (">=", "<="):
        if op in spec:
            name, _, raw = spec.partition(op)
            try:
                return name.strip(), op, float(raw)
            except ValueError:
                break
    sys.exit(f"error: bad {flag} {spec!r} (expected NAME>=VALUE "
             "or NAME<=VALUE)")


def parse_ceiling(spec: str) -> tuple[str, str, float]:
    """--require-max: 'name<=value' (the memory-ceiling gate). A bare
    'name=value' is accepted as shorthand for '<='; '>=' is rejected —
    floors belong to --require."""
    if ">=" in spec:
        sys.exit(f"error: --require-max {spec!r} is a ceiling gate; "
                 "use --require for NAME>=VALUE floors")
    if "<=" not in spec and "=" in spec:
        name, _, raw = spec.partition("=")
        spec = f"{name}<={raw}"
    return parse_requirement(spec, flag="--require-max")


def check_requirements(cand: dict,
                       specs: list[tuple[str, tuple[str, str, float]]],
                       verbose: bool) -> list[str]:
    """Absolute gates on candidate counters/gauges, baseline-independent."""
    failures: list[str] = []
    for spec, (name, op, bound) in specs:
        metric = cand.get(name)
        value = scalar_value(metric) if isinstance(metric, dict) else None
        if value is None:
            failures.append(
                f"{spec}: metric {name!r} missing from "
                "candidate (or not a counter/gauge)"
            )
            continue
        ok = value >= bound if op == ">=" else value <= bound
        if verbose or not ok:
            print(f"  require {name} {op} {bound:g}: measured {value:g} "
                  f"[{'ok' if ok else 'FAIL'}]")
        if not ok:
            failures.append(
                f"{spec}: measured {value:g}"
            )
    return failures


def compare_timings(base: dict, cand: dict, args) -> list[str]:
    regressions: list[str] = []
    entries = [("wall_ms", base.get("wall_ms", 0.0), cand.get("wall_ms", 0.0))]
    base_phases = {p["name"]: p["ms"] for p in base.get("phases", [])}
    cand_phases = {p["name"]: p["ms"] for p in cand.get("phases", [])}
    for name in sorted(set(base_phases) | set(cand_phases)):
        entries.append(
            (f"phase[{name}]", base_phases.get(name, 0.0),
             cand_phases.get(name, 0.0))
        )
    for label, old, new in entries:
        change = rel_change(old, new)
        if args.verbose:
            print(f"  {label}: {old:.1f}ms -> {new:.1f}ms "
                  f"({change * 100.0:+.1f}%)")
        if args.include_timings and change > args.threshold:
            regressions.append(
                f"{label}: {old:.1f}ms -> {new:.1f}ms "
                f"exceeds {args.threshold * 100.0:.1f}%"
            )
    return regressions


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("candidate", help="candidate BENCH_*.json")
    parser.add_argument(
        "--threshold", type=float, default=0.10,
        help="max allowed relative change per metric (default 0.10 = 10%%)",
    )
    parser.add_argument(
        "--include-timings", action="store_true",
        help="also gate on wall_ms and phase timings (noisy across machines)",
    )
    parser.add_argument(
        "--allow-missing", action="store_true",
        help="metrics present on only one side warn instead of failing",
    )
    parser.add_argument(
        "--require", action="append", default=[], metavar="NAME>=VALUE",
        help="absolute floor (>=) or ceiling (<=) on a candidate counter/"
             "gauge; repeatable; fails independent of the baseline",
    )
    parser.add_argument(
        "--require-max", action="append", default=[], metavar="NAME<=VALUE",
        help="absolute ceiling on a candidate counter/gauge (memory gate: "
             "e.g. 'scale.bytes_per_node<=64' or 'peak_rss_mb<=16384'); "
             "repeatable; rejects '>=' specs",
    )
    parser.add_argument(
        "--verbose", "-v", action="store_true",
        help="print every compared value, not just regressions",
    )
    args = parser.parse_args()

    base = load_report(args.baseline)
    cand = load_report(args.candidate)
    if base.get("bench") != cand.get("bench"):
        sys.exit(
            f"error: comparing different benches: "
            f"{base.get('bench')!r} vs {cand.get('bench')!r}"
        )
    for key in ("n", "runs", "queries", "seed"):
        if base.get("config", {}).get(key) != cand.get("config", {}).get(key):
            print(
                f"warning: config.{key} differs "
                f"({base.get('config', {}).get(key)} vs "
                f"{cand.get('config', {}).get(key)}) — "
                "metric deltas reflect the config change, not a regression"
            )

    print(f"bench: {base['bench']}  threshold: {args.threshold * 100.0:.1f}%")
    regressions = compare_metrics(
        base.get("metrics", {}), cand.get("metrics", {}), args
    )
    regressions += compare_timings(base, cand, args)
    gates = [(f"--require {spec!r}", parse_requirement(spec))
             for spec in args.require]
    gates += [(f"--require-max {spec!r}", parse_ceiling(spec))
              for spec in args.require_max]
    regressions += check_requirements(
        cand.get("metrics", {}), gates, args.verbose
    )

    if regressions:
        print(f"\nFAIL: {len(regressions)} regression(s):")
        for line in regressions:
            print(f"  - {line}")
        return 1
    print("OK: no metric moved beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
