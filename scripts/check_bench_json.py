#!/usr/bin/env python3
"""Validate a BENCH_*.json report against the makalu.bench.v1 schema.

Usage:
    scripts/check_bench_json.py BENCH_foo.json [BENCH_bar.json ...]

Used by the bench_smoke ctest label: every bench runs at a tiny --n with
--json, then this script asserts the emitted document carries the full
run-metadata contract. Exits non-zero (with one line per problem) on the
first malformed file. Intentionally dependency-free — stdlib json only.
"""

from __future__ import annotations

import json
import sys

SCHEMA = "makalu.bench.v1"
REQUIRED_TOP = ("schema", "bench", "git", "config", "wall_ms", "phases",
                "metrics")
REQUIRED_CONFIG = ("n", "runs", "queries", "seed", "threads", "paper")


def check_file(path: str) -> list[str]:
    problems: list[str] = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"cannot parse: {exc}"]

    for key in REQUIRED_TOP:
        if key not in doc:
            problems.append(f"missing top-level key {key!r}")
    if problems:
        return problems

    if doc["schema"] != SCHEMA:
        problems.append(f"schema is {doc['schema']!r}, expected {SCHEMA!r}")
    if not isinstance(doc["bench"], str) or not doc["bench"]:
        problems.append("bench must be a non-empty string")
    if not isinstance(doc["git"], str) or not doc["git"]:
        problems.append("git must be a non-empty string")

    config = doc["config"]
    for key in REQUIRED_CONFIG:
        if key not in config:
            problems.append(f"missing config.{key}")
    if isinstance(config.get("n"), int) and config["n"] <= 0:
        problems.append("config.n must be positive")

    if not isinstance(doc["wall_ms"], (int, float)) or doc["wall_ms"] < 0:
        problems.append("wall_ms must be a non-negative number")

    if not isinstance(doc["phases"], list):
        problems.append("phases must be a list")
    else:
        for i, phase in enumerate(doc["phases"]):
            if not isinstance(phase, dict) or "name" not in phase \
                    or "ms" not in phase:
                problems.append(f"phases[{i}] must have 'name' and 'ms'")

    metrics = doc["metrics"]
    if not isinstance(metrics, dict):
        problems.append("metrics must be an object")
        return problems
    for name, metric in metrics.items():
        kind = metric.get("kind")
        if kind in ("counter", "gauge"):
            if "value" not in metric:
                problems.append(f"metrics[{name!r}] missing 'value'")
        elif kind == "histogram":
            for key in ("count", "sum", "buckets"):
                if key not in metric:
                    problems.append(f"metrics[{name!r}] missing {key!r}")
            bucket_total = sum(
                b.get("count", 0) for b in metric.get("buckets", [])
            )
            if bucket_total != metric.get("count"):
                problems.append(
                    f"metrics[{name!r}] bucket counts sum to {bucket_total}, "
                    f"count says {metric.get('count')}"
                )
        else:
            problems.append(f"metrics[{name!r}] has unknown kind {kind!r}")
    return problems


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    status = 0
    for path in sys.argv[1:]:
        problems = check_file(path)
        if problems:
            status = 1
            for line in problems:
                print(f"{path}: {line}")
        else:
            with open(path, "r", encoding="utf-8") as f:
                doc = json.load(f)
            print(f"{path}: ok ({doc['bench']}, {len(doc['metrics'])} metrics,"
                  f" {len(doc['phases'])} phases)")
    return status


if __name__ == "__main__":
    sys.exit(main())
