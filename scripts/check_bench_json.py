#!/usr/bin/env python3
"""Validate a BENCH_*.json report against the makalu.bench.v1 schema.

Usage:
    scripts/check_bench_json.py BENCH_foo.json [BENCH_bar.json ...]

Used by the bench_smoke ctest label: every bench runs at a tiny --n with
--json, then this script asserts the emitted document carries the full
run-metadata contract. Exits non-zero (with one line per problem) on the
first malformed file. Intentionally dependency-free — stdlib json only.
"""

from __future__ import annotations

import json
import sys

SCHEMA = "makalu.bench.v1"
REQUIRED_TOP = ("schema", "bench", "git", "config", "wall_ms", "phases",
                "metrics")
REQUIRED_CONFIG = ("n", "runs", "queries", "seed", "threads", "paper")


def check_file(path: str) -> list[str]:
    problems: list[str] = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"cannot parse: {exc}"]

    for key in REQUIRED_TOP:
        if key not in doc:
            problems.append(f"missing top-level key {key!r}")
    if problems:
        return problems

    if doc["schema"] != SCHEMA:
        problems.append(f"schema is {doc['schema']!r}, expected {SCHEMA!r}")
    if not isinstance(doc["bench"], str) or not doc["bench"]:
        problems.append("bench must be a non-empty string")
    if not isinstance(doc["git"], str) or not doc["git"]:
        problems.append("git must be a non-empty string")

    config = doc["config"]
    for key in REQUIRED_CONFIG:
        if key not in config:
            problems.append(f"missing config.{key}")
    if isinstance(config.get("n"), int) and config["n"] <= 0:
        problems.append("config.n must be positive")

    if not isinstance(doc["wall_ms"], (int, float)) or doc["wall_ms"] < 0:
        problems.append("wall_ms must be a non-negative number")

    if not isinstance(doc["phases"], list):
        problems.append("phases must be a list")
    else:
        for i, phase in enumerate(doc["phases"]):
            if not isinstance(phase, dict) or "name" not in phase \
                    or "ms" not in phase:
                problems.append(f"phases[{i}] must have 'name' and 'ms'")

    metrics = doc["metrics"]
    if not isinstance(metrics, dict):
        problems.append("metrics must be an object")
        return problems
    for name, metric in metrics.items():
        kind = metric.get("kind")
        if kind in ("counter", "gauge"):
            if "value" not in metric:
                problems.append(f"metrics[{name!r}] missing 'value'")
            elif not _is_finite_number(metric["value"]):
                problems.append(
                    f"metrics[{name!r}] value {metric['value']!r} is not a "
                    f"finite number"
                )
        elif kind == "histogram":
            for key in ("count", "sum", "buckets"):
                if key not in metric:
                    problems.append(f"metrics[{name!r}] missing {key!r}")
            bucket_total = sum(
                b.get("count", 0) for b in metric.get("buckets", [])
            )
            if bucket_total != metric.get("count"):
                problems.append(
                    f"metrics[{name!r}] bucket counts sum to {bucket_total}, "
                    f"count says {metric.get('count')}"
                )
        else:
            problems.append(f"metrics[{name!r}] has unknown kind {kind!r}")
    problems.extend(check_workload_metrics(metrics))
    return problems


def _is_finite_number(value) -> bool:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return False
    return value == value and value not in (float("inf"), float("-inf"))


# The workload.* namespace (bench_ext_workload and the open-loop engine)
# carries a typed contract on top of the generic schema: percentile
# gauges must be histogram-derived and monotone, the engine's two raw
# histograms must actually be histograms, and the headline saturation /
# wave gauges must be present as gauges whenever any of the namespace is.
WORKLOAD_HISTOGRAMS = ("workload.sojourn_ms", "workload.queue_depth")
WORKLOAD_GAUGES = (
    "workload.saturation_qps",
    "workload.p50_ms",
    "workload.p99_ms",
    "workload.p999_ms",
    "workload.abf_update_wave_us",
)


def check_workload_metrics(metrics: dict) -> list[str]:
    problems: list[str] = []
    if not any(name.startswith("workload.") for name in metrics):
        return problems
    for name in WORKLOAD_HISTOGRAMS:
        metric = metrics.get(name)
        if metric is not None and metric.get("kind") != "histogram":
            problems.append(f"metrics[{name!r}] must be a histogram")
    for name in WORKLOAD_GAUGES:
        metric = metrics.get(name)
        if metric is None:
            problems.append(f"workload.* namespace present but {name!r} "
                            f"is missing")
        elif metric.get("kind") != "gauge":
            problems.append(f"metrics[{name!r}] must be a gauge")
    # Percentile triples (workload.p50_ms / <profile>_p50_ms etc.) must
    # be monotone: p50 <= p99 <= p999.
    for name, metric in metrics.items():
        if not name.startswith("workload.") or not name.endswith("p50_ms"):
            continue
        prefix = name[: -len("p50_ms")]
        p50 = metric.get("value")
        p99 = metrics.get(f"{prefix}p99_ms", {}).get("value")
        p999 = metrics.get(f"{prefix}p999_ms", {}).get("value")
        for hi_name, lo, hi in ((f"{prefix}p99_ms", p50, p99),
                                (f"{prefix}p999_ms", p99, p999)):
            if (_is_finite_number(lo) and _is_finite_number(hi)
                    and hi < lo):
                problems.append(
                    f"metrics[{hi_name!r}] = {hi} is below its lower "
                    f"percentile {lo} (non-monotone percentiles)"
                )
    return problems


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    status = 0
    for path in sys.argv[1:]:
        problems = check_file(path)
        if problems:
            status = 1
            for line in problems:
                print(f"{path}: {line}")
        else:
            with open(path, "r", encoding="utf-8") as f:
                doc = json.load(f)
            print(f"{path}: ok ({doc['bench']}, {len(doc['metrics'])} metrics,"
                  f" {len(doc['phases'])} phases)")
    return status


if __name__ == "__main__":
    sys.exit(main())
